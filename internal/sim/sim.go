// Package sim is a deterministic discrete-event simulation kernel.
//
// Every component of the network simulator schedules work on a shared
// Scheduler. Events fire in strictly nondecreasing time order; ties are
// broken by scheduling order, which — together with explicitly seeded
// random number generators — makes entire simulation runs reproducible
// bit-for-bit.
//
// Time is modelled as nanoseconds since the start of the run (type Time).
// Durations are ordinary time.Duration values.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the start
// of the run.
type Time int64

// Seconds returns the timestamp as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration returns the timestamp as an offset from time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the timestamp shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two timestamps.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the timestamp as a duration, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// Tag is an interned component handle for scheduler attribution.
// Components intern their name once at package init with TagFor and
// schedule through the *Tag variants; attribution then costs a single
// array increment per executed event, and the event struct stays one
// machine word smaller than it would with a string tag.
type Tag uint8

// maxTags bounds the interning table; Tag 0 is reserved for untagged.
const maxTags = 256

var (
	tagMu    sync.Mutex
	tagNames = []string{""} // index = Tag; 0 = untagged
)

// TagFor interns a component name, returning its Tag. Interning the
// same name twice returns the same Tag. Intended for package-level
// variable initialisation, not per-event calls.
func TagFor(name string) Tag {
	if name == "" {
		return 0
	}
	tagMu.Lock()
	defer tagMu.Unlock()
	for i, n := range tagNames {
		if n == name {
			return Tag(i)
		}
	}
	if len(tagNames) == maxTags {
		panic("sim: too many distinct scheduler tags")
	}
	tagNames = append(tagNames, name)
	return Tag(len(tagNames) - 1)
}

// Name returns the component name the tag was interned under.
func (t Tag) Name() string {
	tagMu.Lock()
	defer tagMu.Unlock()
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return ""
}

type event struct {
	at  Time
	seq uint64 // scheduling order; breaks ties deterministically
	fn  func()

	index int32 // heap index; -1 once popped or cancelled
	tag   Tag   // component attribution; 0 = untagged
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = int32(len(*h))
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler owns the simulation clock and the pending event queue.
// The zero value is not usable; call New.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Processed counts events executed so far; useful for run statistics
	// and for guarding against runaway simulations in tests.
	Processed uint64

	// ClockRegressions counts events that executed with a timestamp
	// earlier than the clock they found — zero in any correct run, since
	// At rejects past scheduling and the event heap pops in time order.
	// Invariant checkers (internal/harness) assert it stays zero rather
	// than trusting the heap implicitly.
	ClockRegressions uint64

	// tagCounts attributes executed events to the component tags they
	// were scheduled under (AtTag/AfterTag/EveryTag), indexed by Tag.
	// Index 0 accumulates untagged events; Processed covers everything.
	tagCounts [maxTags]uint64
}

// New returns an empty scheduler with the clock at zero.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. Timers are single-shot.
type Timer struct {
	s *Scheduler
	e *event
}

// At schedules fn to run at absolute time t. Scheduling in the past (t
// before Now) panics: it is always a logic error in a simulation model.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	return s.AtTag(0, t, fn)
}

// AtTag is At with the executed event attributed to the tagged
// component in EventCounts. Components that want their scheduler load
// visible in telemetry schedule through the *Tag variants.
func (s *Scheduler) AtTag(tag Tag, t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn, tag: tag}
	heap.Push(&s.events, e)
	return &Timer{s: s, e: e}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.AfterTag(0, d, fn)
}

// AfterTag is After with component attribution; see AtTag.
func (s *Scheduler) AfterTag(tag Tag, d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.AtTag(tag, s.now.Add(d), fn)
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending. Stopping an already-fired or already-stopped
// timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.index < 0 {
		return false
	}
	heap.Remove(&t.s.events, int(t.e.index))
	t.e.fn = nil
	t.e = nil
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.e != nil && t.e.index >= 0
}

// When returns the time at which the timer will fire. It is only
// meaningful while Pending.
func (t *Timer) When() Time {
	if !t.Pending() {
		return -1
	}
	return t.e.at
}

// step executes the earliest pending event. It reports false when no
// events remain.
func (s *Scheduler) step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	if e.at < s.now {
		s.ClockRegressions++
	}
	s.now = e.at
	s.Processed++
	s.tagCounts[e.tag]++
	e.fn()
	return true
}

// TagCount is one component's executed-event count.
type TagCount struct {
	Tag   string
	Count uint64
}

// EventCounts returns per-component executed-event counts for events
// scheduled through AtTag/AfterTag/EveryTag, sorted by component name
// so callers iterate deterministically. Untagged events (Tag 0) are
// not included; Processed covers everything.
func (s *Scheduler) EventCounts() []TagCount {
	tagMu.Lock()
	names := tagNames[:len(tagNames):len(tagNames)]
	tagMu.Unlock()
	out := make([]TagCount, 0, len(names))
	for i := 1; i < len(names); i++ {
		if c := s.tagCounts[i]; c > 0 {
			out = append(out, TagCount{Tag: names[i], Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with timestamps at or before t, then advances
// the clock to exactly t. Events scheduled beyond t remain pending.
func (s *Scheduler) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d. See RunUntil.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Stop makes the currently executing Run/RunUntil return after the
// current event completes. Pending events stay queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// Ticker invokes a function periodically until stopped.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       func()
	tag      Tag
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval, with the first invocation one
// interval from now. It panics on a nonpositive interval.
func (s *Scheduler) Every(interval time.Duration, fn func()) *Ticker {
	return s.EveryTag(0, interval, fn)
}

// EveryTag is Every with component attribution; see AtTag.
func (s *Scheduler) EveryTag(tag Tag, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn, tag: tag}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.s.AfterTag(t.tag, t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// NewRand returns a deterministic random number generator for a simulation
// component. Each component should own its generator so that adding a
// component does not perturb the random streams of the others.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
