package sim

import (
	"testing"
	"time"
)

// TestLaneZeroOrderUnchanged pins the compatibility contract: events
// scheduled through the ordinary API all live on lane 0 and execute in
// (time, scheduling order) — exactly the kernel's pre-lane total order.
func TestLaneZeroOrderUnchanged(t *testing.T) {
	s := New()
	var got []int
	rec := func(i int) func() { return func() { got = append(got, i) } }
	s.At(20, rec(3))
	s.At(10, rec(0))
	s.At(10, rec(1))
	s.At(20, rec(2)) // same time as rec(3) but scheduled later? No: 3 first.
	s.Run()
	want := []int{0, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

// TestLaneOrdering verifies the full (time, lane, laneSeq) order: at one
// timestamp, lane 0 runs first, then lanes ascending, then laneSeq
// ascending within a lane — regardless of scheduling order.
func TestLaneOrdering(t *testing.T) {
	s := New()
	var got []string
	rec := func(tag string) CallFunc {
		return func(a, b any) { got = append(got, tag) }
	}
	// Scheduled deliberately out of key order.
	s.AtCallLane(0, 2, 7, 50, rec("lane2/7"), nil, nil)
	s.AtCallLane(0, 1, 9, 50, rec("lane1/9"), nil, nil)
	s.At(50, func() { got = append(got, "lane0/a") })
	s.AtCallLane(0, 1, 3, 50, rec("lane1/3"), nil, nil)
	s.At(50, func() { got = append(got, "lane0/b") })
	s.AtCallLane(0, 1, 4, 40, rec("early"), nil, nil)
	s.Run()
	want := []string{"early", "lane0/a", "lane0/b", "lane1/3", "lane1/9", "lane2/7"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

// TestLaneSeqIndependentOfLocalSeq verifies that interleaving local
// scheduling (which advances the scheduler's own seq counter) does not
// perturb lane-event ordering: the lane key is entirely caller-owned.
func TestLaneSeqIndependentOfLocalSeq(t *testing.T) {
	s := New()
	var got []string
	rec := func(tag string) CallFunc {
		return func(a, b any) { got = append(got, tag) }
	}
	// Burn local seq numbers between the lane schedules.
	s.AtCallLane(0, 1, 2, 10, rec("second"), nil, nil)
	for i := 0; i < 100; i++ {
		s.At(5, func() {})
	}
	s.AtCallLane(0, 1, 1, 10, rec("first"), nil, nil)
	s.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("lane order %v, want [first second]", got)
	}
}

// TestLaneEventAtNow covers the zero-lookahead-adjacent edge: a delivery
// may arrive exactly at the consumer's current clock (arrival == window
// barrier) and must be accepted and run before time advances.
func TestLaneEventAtNow(t *testing.T) {
	s := New()
	s.RunUntil(100)
	fired := false
	s.AtCallLane(0, 1, 1, 100, func(a, b any) { fired = true }, nil, nil)
	s.RunUntil(200)
	if !fired {
		t.Fatal("lane event at now did not fire")
	}
	if s.Now() != 200 {
		t.Fatalf("clock %v, want 200", s.Now())
	}
}

func TestAtCallLaneRejectsLaneZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtCallLane(lane=0) did not panic")
		}
	}()
	New().AtCallLane(0, 0, 1, 10, func(a, b any) {}, nil, nil)
}

func TestAtCallLaneRejectsPast(t *testing.T) {
	s := New()
	s.RunUntil(100)
	defer func() {
		if recover() == nil {
			t.Fatal("AtCallLane in the past did not panic")
		}
	}()
	s.AtCallLane(0, 1, 1, 99, func(a, b any) {}, nil, nil)
}

// TestNextEventTime verifies the engine's window-sizing peek: it must
// skip lazily cancelled heap tops rather than letting a stopped timer
// shorten a synchronization window.
func TestNextEventTime(t *testing.T) {
	s := New()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty scheduler reported a next event")
	}
	tm := s.At(10, func() {})
	s.At(30, func() {})
	if at, ok := s.NextEventTime(); !ok || at != 10 {
		t.Fatalf("next = %v,%v, want 10,true", at, ok)
	}
	tm.Stop()
	if at, ok := s.NextEventTime(); !ok || at != 30 {
		t.Fatalf("next after cancel = %v,%v, want 30,true", at, ok)
	}
}

// TestDeriveSeedFraming pins the framing property: part boundaries
// matter, and the derivation matches what harness.Seed has always
// produced (stability matters — golden files embed these streams).
func TestDeriveSeedFraming(t *testing.T) {
	if DeriveSeed("ab", "c") == DeriveSeed("a", "bc") {
		t.Fatal("length framing lost: (ab,c) == (a,bc)")
	}
	if DeriveSeed("x") != DeriveSeed("x") {
		t.Fatal("derivation is not deterministic")
	}
	if DeriveSeed("x") < 0 {
		t.Fatal("seed sign bit set")
	}
}

func TestTimerAcrossRunUntilWindows(t *testing.T) {
	// A ticker interleaved with lane deliveries keeps its cadence.
	s := New()
	var ticks int
	s.Every(10*time.Nanosecond, func() { ticks++ })
	for i := 1; i <= 5; i++ {
		s.AtCallLane(0, 1, uint64(i), Time(i*7), func(a, b any) {}, nil, nil)
	}
	s.RunUntil(100)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}
