package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Errorf("final clock = %v, want 30ms", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(time.Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != Time(time.Millisecond) || fired[1] != Time(2*time.Millisecond) {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.After(time.Second, func() {})
	s.RunFor(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(Time(time.Millisecond), func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Error("negative After never ran")
	}
	if s.Now() != 0 {
		t.Errorf("clock = %v, want 0", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Pending() {
		t.Error("timer should be pending")
	}
	if !tm.Stop() {
		t.Error("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	s.Run()
	if ran {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New()
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Stop() {
		t.Error("Stop after fire should report false")
	}
}

func TestTimerWhen(t *testing.T) {
	s := New()
	tm := s.After(5*time.Millisecond, func() {})
	if tm.When() != Time(5*time.Millisecond) {
		t.Errorf("When = %v, want 5ms", tm.When())
	}
	tm.Stop()
	if tm.When() != -1 {
		t.Errorf("When after stop = %v, want -1", tm.When())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(Time(3 * time.Millisecond))
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Errorf("clock = %v, want exactly 3ms", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if count != 5 {
		t.Errorf("after Run count = %d, want 5", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(Time(time.Second))
	if s.Now() != Time(time.Second) {
		t.Errorf("clock = %v, want 1s", s.Now())
	}
}

func TestStopInsideEvent(t *testing.T) {
	s := New()
	var count int
	s.After(time.Millisecond, func() { count++; s.Stop() })
	s.After(2*time.Millisecond, func() { count++ })
	s.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Run should stop)", count)
	}
	s.Run() // resumes
	if count != 2 {
		t.Errorf("after resume count = %d, want 2", count)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []Time
	tk := s.Every(10*time.Millisecond, func() {
		ticks = append(ticks, s.Now())
	})
	s.RunUntil(Time(35 * time.Millisecond))
	tk.Stop()
	s.RunUntil(Time(100 * time.Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range ticks {
		want := Time(time.Duration(i+1) * 10 * time.Millisecond)
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopInsideTick(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.Every(time.Millisecond, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.RunUntil(Time(20 * time.Millisecond))
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestEveryPanicsOnNonPositive(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	s.Every(0, func() {})
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	s.Run()
	if s.Processed != 7 {
		t.Errorf("Processed = %d, want 7", s.Processed)
	}
}

func TestDeterminism(t *testing.T) {
	// Two schedulers fed the same randomized workload execute events in
	// identical order.
	run := func(seed int64) []int {
		s := New()
		r := rand.New(rand.NewSource(seed))
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			s.At(Time(r.Intn(50))*Time(time.Millisecond), func() { got = append(got, i) })
		}
		s.Run()
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Errorf("Add wrong")
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Errorf("Sub wrong")
	}
	if tm.String() != "1.5s" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestPropertyEventsFireInOrder(t *testing.T) {
	// Property: for any multiset of schedule times, firing order is the
	// sorted order of those times.
	f := func(offsets []uint16) bool {
		s := New()
		var fired []Time
		for _, o := range offsets {
			s.At(Time(o)*Time(time.Microsecond), func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		want := make([]int, len(offsets))
		for i, o := range offsets {
			want[i] = int(o)
		}
		sort.Ints(want)
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != Time(want[i])*Time(time.Microsecond) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("NewRand not deterministic for equal seeds")
		}
	}
}
