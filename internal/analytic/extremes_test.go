package analytic

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// TestModelExtremes drives every closed-form model with the boundary
// inputs real sweeps generate — zero loss, sub-millisecond RTT, 100G+
// rates, tiny and jumbo MSS — and asserts the results are finite (or a
// documented +Inf), non-negative, and never wrapped by int64 overflow.
func TestModelExtremes(t *testing.T) {
	rtts := []time.Duration{
		0, time.Nanosecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second,
	}
	rates := []units.BitRate{0, units.Kbps, units.Gbps, 100 * units.Gbps, 10 * units.Tbps}
	losses := []float64{0, 1e-12, 1e-6, 1.0 / 22000, 0.5, 1}
	msss := []units.ByteSize{0, 1, 536, 1460, 8960, 64 * units.KB}

	finite := func(name string, v float64, args ...any) {
		t.Helper()
		if math.IsNaN(v) {
			t.Errorf("%s = NaN for %v", name, args)
		}
		if v < 0 {
			t.Errorf("%s = %g, negative, for %v", name, v, args)
		}
	}

	for _, rtt := range rtts {
		for _, p := range losses {
			for _, mss := range msss {
				m := MathisThroughput(mss, rtt, p)
				finite("MathisThroughput", float64(m), rtt, p, mss)
				if p == 0 && rtt > 0 && !math.IsInf(float64(m), 1) {
					t.Errorf("MathisThroughput(p=0, rtt=%v) = %v, want +Inf", rtt, m)
				}
				if p > 0 && math.IsInf(float64(m), 0) {
					t.Errorf("MathisThroughput(%v, %v, %g) = +Inf unexpectedly", mss, rtt, p)
				}
				finite("MathisThroughputFull", float64(MathisThroughputFull(mss, rtt, p)), rtt, p, mss)

				for _, rate := range rates {
					em := EffectiveMathisRate(rate, mss, rtt, p)
					finite("EffectiveMathisRate", float64(em), rate, mss, rtt, p)
					if float64(em) > float64(rate) {
						t.Errorf("EffectiveMathisRate(%v,...) = %v exceeds bottleneck", rate, em)
					}
				}
			}
		}
	}

	for _, rate := range rates {
		for _, rtt := range rtts {
			bdp := units.BandwidthDelayProduct(rate, rtt)
			if bdp < 0 {
				t.Errorf("BDP(%v, %v) = %v, overflowed negative", rate, rtt, bdp)
			}
			w := RequiredWindow(rate, rtt)
			if w < 0 {
				t.Errorf("RequiredWindow(%v, %v) = %v, negative", rate, rtt, w)
			}
			for _, mss := range msss {
				rec := RecoveryTime(rate, rtt, mss)
				if rec < 0 {
					t.Errorf("RecoveryTime(%v, %v, %v) = %v, overflowed negative", rate, rtt, mss, rec)
				}
			}
			for _, mss := range msss {
				b := LossBudget(rate, mss, rtt)
				finite("LossBudget", b, rate, mss, rtt)
			}
		}
	}

	// 10 Tbps over 10 s RTT with 1-byte MSS is the worst encodable
	// combination; it must saturate, not wrap.
	if rec := RecoveryTime(10*units.Tbps, 10*time.Second, 1); rec != math.MaxInt64 {
		t.Errorf("extreme RecoveryTime = %v, want saturation at MaxInt64", rec)
	}

	// Window-limited rates at sub-ms RTT stay finite and positive.
	for _, rtt := range []time.Duration{time.Nanosecond, time.Microsecond, 500 * time.Microsecond} {
		r := WindowLimitedRate(64*units.KiB, rtt)
		finite("WindowLimitedRate", float64(r), rtt)
		if r <= 0 {
			t.Errorf("WindowLimitedRate(64KiB, %v) = %v, want positive", rtt, r)
		}
	}

	// Exabyte transfers at kilobit rates: TransferTime saturates rather
	// than wrapping negative.
	if d := TransferTime(1e18*units.Byte, units.Kbps); d < 0 {
		t.Errorf("TransferTime(1EB, 1Kbps) = %v, overflowed negative", d)
	}
}
