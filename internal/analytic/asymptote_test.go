package analytic

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// Asymptote coverage for the Mathis bound: extremes_test.go exercises
// saturation (huge/overflowing inputs); these tables pin the two
// analytic limits the hybrid fluid engine leans on every tick —
// p → 0 (rate diverges as 1/√p until the path, not TCP, limits) and
// rtt → ∞ (rate falls to zero monotonically).

func TestMathisThroughputLowLossAsymptote(t *testing.T) {
	const (
		mss = 1460 * units.Byte
		rtt = 50 * time.Millisecond
	)
	// Exact p = 0 is the loss-free regime: unbounded by TCP.
	if got := MathisThroughput(mss, rtt, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("p=0: want +Inf, got %v", got)
	}
	if got := MathisThroughput(mss, rtt, -1e-9); !math.IsInf(float64(got), 1) {
		t.Errorf("p<0: want +Inf, got %v", got)
	}
	// Approaching zero, rate scales as 1/√p: each 100× drop in loss
	// buys exactly 10× throughput, with no floor before overflow.
	cases := []struct {
		p    float64
		want units.BitRate // mss/rtt × 1/√p, hand-computed
	}{
		{1e-2, units.BitRate(1460 * 8 / 0.05 * 10)},
		{1e-4, units.BitRate(1460 * 8 / 0.05 * 100)},
		{1e-6, units.BitRate(1460 * 8 / 0.05 * 1000)},
		{1e-8, units.BitRate(1460 * 8 / 0.05 * 10000)},
	}
	for _, c := range cases {
		got := MathisThroughput(mss, rtt, c.p)
		if rel := math.Abs(float64(got-c.want)) / float64(c.want); rel > 1e-9 {
			t.Errorf("p=%g: got %v, want %v (rel err %g)", c.p, got, c.want, rel)
		}
	}
	for i := 1; i < len(cases); i++ {
		a := MathisThroughput(mss, rtt, cases[i-1].p)
		b := MathisThroughput(mss, rtt, cases[i].p)
		if ratio := float64(b) / float64(a); math.Abs(ratio-10) > 1e-6 {
			t.Errorf("p %g→%g: want exactly 10× rate, got %.9f×", cases[i-1].p, cases[i].p, ratio)
		}
	}
}

func TestMathisThroughputLongRTTAsymptote(t *testing.T) {
	const (
		mss = 1460 * units.Byte
		p   = 1e-4
	)
	// Rate must fall monotonically in RTT and approach zero.
	rtts := []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
		time.Second, 10 * time.Second, 1000 * time.Second,
		1_000_000 * time.Second,
	}
	prev := units.BitRate(math.MaxInt64)
	for _, rtt := range rtts {
		got := MathisThroughput(mss, rtt, p)
		if got > prev {
			t.Errorf("rtt=%v: rate %v rose above %v; must fall monotonically", rtt, got, prev)
		}
		prev = got
	}
	// Doubling RTT halves the rate (1/RTT scaling), exactly.
	a := MathisThroughput(mss, 20*time.Millisecond, p)
	b := MathisThroughput(mss, 40*time.Millisecond, p)
	if ratio := float64(a) / float64(b); math.Abs(ratio-2) > 1e-9 {
		t.Errorf("RTT doubling: want exactly 2× rate drop, got %.9f×", ratio)
	}
	// The limit itself: at the maximum representable RTT the rate is
	// below one bit per second — zero for any practical purpose — and
	// still nonnegative (BitRate is a float; it never truncates).
	if got := MathisThroughput(mss, math.MaxInt64, p); got < 0 || got >= 1 {
		t.Errorf("rtt=max: want rate in [0,1) bps, got %v", got)
	}
	// And EffectiveMathisRate stays within the bottleneck on the way.
	for _, rtt := range rtts {
		if got := EffectiveMathisRate(10*units.Gbps, mss, rtt, p); got > 10*units.Gbps {
			t.Errorf("rtt=%v: effective rate %v exceeds bottleneck", rtt, got)
		}
	}
}

// BenchmarkMathisThroughput measures the per-call cost the fluid
// engine pays per aggregate per tick.
func BenchmarkMathisThroughput(b *testing.B) {
	var sink units.BitRate
	for i := 0; i < b.N; i++ {
		sink += MathisThroughput(1460*units.Byte, 50*time.Millisecond, 1e-4)
	}
	_ = sink
}

// BenchmarkEffectiveMathisRate is the exact call on the tick hot path.
func BenchmarkEffectiveMathisRate(b *testing.B) {
	var sink units.BitRate
	for i := 0; i < b.N; i++ {
		sink += EffectiveMathisRate(10*units.Gbps, 1460*units.Byte, 50*time.Millisecond, 1e-4)
	}
	_ = sink
}
