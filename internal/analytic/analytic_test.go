package analytic

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestMathisPaperScenario(t *testing.T) {
	// The paper's Figure 1 setting: 9000-byte MTU (MSS ≈ 8960), loss
	// 0.0046% (1/22000), across RTTs. Spot-check the shape: at 10 ms the
	// bound must sit far below 10 Gb/s, and it must fall ~10× from 10 ms
	// to 100 ms.
	mss := units.ByteSize(8960)
	p := 1.0 / 22000
	at10 := MathisThroughput(mss, 10*time.Millisecond, p)
	at100 := MathisThroughput(mss, 100*time.Millisecond, p)
	if at10 >= 10*units.Gbps {
		t.Errorf("at 10ms = %v, want below 10Gbps", at10)
	}
	ratio := float64(at10 / at100)
	if math.Abs(ratio-10) > 0.01 {
		t.Errorf("10ms/100ms ratio = %v, want 10 (inverse RTT)", ratio)
	}
	// And the known closed-form value: 8960B / 0.01s / sqrt(1/22000).
	want := units.BitRate(8960.0 / 0.01 / math.Sqrt(p) * 8)
	if math.Abs(float64(at10-want)/float64(want)) > 1e-12 {
		t.Errorf("at10 = %v, want %v", at10, want)
	}
}

func TestMathisEdgeCases(t *testing.T) {
	if MathisThroughput(1460, 0, 0.01) != 0 {
		t.Error("zero RTT should return 0")
	}
	if !math.IsInf(float64(MathisThroughput(1460, time.Millisecond, 0)), 1) {
		t.Error("zero loss should be unbounded")
	}
}

func TestMathisFullConstant(t *testing.T) {
	base := MathisThroughput(1460, 10*time.Millisecond, 1e-4)
	full := MathisThroughputFull(1460, 10*time.Millisecond, 1e-4)
	if math.Abs(float64(full/base)-math.Sqrt(1.5)) > 1e-12 {
		t.Error("full model should scale by sqrt(3/2)")
	}
}

func TestLossBudgetInvertsMathis(t *testing.T) {
	f := func(rttMs, mssRaw uint16) bool {
		rtt := time.Duration(rttMs%200+1) * time.Millisecond
		mss := units.ByteSize(mssRaw%8000 + 500)
		p := 1e-5
		rate := MathisThroughput(mss, rtt, p)
		got := LossBudget(rate, mss, rtt)
		return math.Abs(got-p)/p < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossBudgetEdges(t *testing.T) {
	if LossBudget(0, 1460, time.Millisecond) != 1 {
		t.Error("zero target tolerates any loss")
	}
	if LossBudget(units.Gbps, 1460, 0) != 0 {
		t.Error("zero RTT edge")
	}
}

func TestRequiredWindowEquation2(t *testing.T) {
	// Paper Equation 2: 1000 Mb/s × 10 ms / 8 = 1.25 MB.
	got := RequiredWindow(units.Gbps, 10*time.Millisecond)
	if got != units.ByteSize(1_250_000) {
		t.Errorf("required window = %v, want 1.25MB", got)
	}
}

func TestWindowLimitedRatePennState(t *testing.T) {
	// §6.2: 64 KB default window at 10 ms RTT caps flows near 50 Mb/s.
	got := WindowLimitedRate(64*units.KiB, 10*time.Millisecond)
	mbps := float64(got / units.Mbps)
	if mbps < 50 || mbps > 55 {
		t.Errorf("window-limited rate = %.1f Mbps, want ~52", mbps)
	}
	// The paper: required window (1.25MB) is "20 times" the 64KB default.
	ratio := float64(RequiredWindow(units.Gbps, 10*time.Millisecond)) / float64(64*units.KiB)
	if ratio < 18 || ratio > 20 {
		t.Errorf("window deficit ratio = %.1f, want ~19 ('20 times less')", ratio)
	}
}

func TestWindowLimitedRateZeroRTT(t *testing.T) {
	if WindowLimitedRate(units.MB, 0) != 0 {
		t.Error("zero RTT should return 0")
	}
}

func TestRecoveryTimeGrowsQuadraticallyWithRTT(t *testing.T) {
	mss := units.ByteSize(1460)
	r10 := RecoveryTime(10*units.Gbps, 10*time.Millisecond, mss)
	r100 := RecoveryTime(10*units.Gbps, 100*time.Millisecond, mss)
	ratio := float64(r100) / float64(r10)
	if math.Abs(ratio-100) > 1 {
		t.Errorf("recovery ratio = %v, want ~100 (quadratic in RTT)", ratio)
	}
	// Concrete: 10G at 100ms, W = 125MB/1460 ≈ 85616 segments; recovery
	// ≈ 42808 RTTs ≈ 4281 s. TCP loss at continental RTT is catastrophic.
	if r100 < time.Hour {
		t.Errorf("recovery at 100ms = %v, want > 1 hour", r100)
	}
}

func TestRecoveryTimeZeroMSS(t *testing.T) {
	if RecoveryTime(units.Gbps, time.Millisecond, 0) != 0 {
		t.Error("zero MSS edge")
	}
}

func TestTransferTimeNOAA(t *testing.T) {
	// §6.3: 239.5 GB at ~395 MB/s ≈ 10 minutes.
	size := units.ByteSize(239.5 * 1e9)
	rate := units.Rate(units.ByteSize(395*units.MB), time.Second)
	d := TransferTime(size, rate)
	if d < 9*time.Minute || d > 11*time.Minute {
		t.Errorf("NOAA transfer time = %v, want ~10 min", d)
	}
}

func TestEffectiveMathisRateCapped(t *testing.T) {
	// Clean short path: Mathis bound far exceeds the link; cap applies.
	got := EffectiveMathisRate(10*units.Gbps, 8960, time.Millisecond, 1e-9)
	if got != 10*units.Gbps {
		t.Errorf("capped rate = %v, want 10Gbps", got)
	}
	// Lossy long path: Mathis bound below the link.
	got = EffectiveMathisRate(10*units.Gbps, 1460, 100*time.Millisecond, 0.001)
	if got >= 10*units.Gbps {
		t.Errorf("lossy rate = %v, want below link", got)
	}
}

func TestMathisMonotonicity(t *testing.T) {
	// Property: throughput decreases with RTT and with loss.
	f := func(a, b uint8) bool {
		rtt1 := time.Duration(a%100+1) * time.Millisecond
		rtt2 := rtt1 + time.Duration(b%100+1)*time.Millisecond
		p1, p2 := 1e-5, 1e-4
		m := units.ByteSize(1460)
		return MathisThroughput(m, rtt1, p1) > MathisThroughput(m, rtt2, p1) &&
			MathisThroughput(m, rtt1, p1) > MathisThroughput(m, rtt1, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
