// Package analytic implements the closed-form TCP performance models the
// paper uses to motivate the Science DMZ: the Mathis throughput bound
// (§2.1, Figure 1), the bandwidth-delay product / required window
// (Equation 2), window-limited throughput (the Penn State case, §6.2),
// and the congestion-recovery time that makes loss so much more costly at
// high round-trip times.
package analytic

import (
	"math"
	"time"

	"repro/internal/units"
)

// MathisConstant is the constant in the full Mathis et al. model,
// sqrt(3/2), for a receiver acking every segment. The paper quotes the
// simplified form (constant 1); both are available.
var MathisConstant = math.Sqrt(3.0 / 2.0)

// MathisThroughput returns the maximum TCP throughput predicted by the
// Mathis equation as quoted in the paper (§2.1, Equation 1):
//
//	rate ≤ MSS/RTT × 1/√p
//
// mss is in bytes, p is the packet loss probability. It returns 0 for a
// nonpositive RTT and +Inf for p = 0 (the loss-free regime, where
// throughput is limited by the path, not by TCP).
func MathisThroughput(mss units.ByteSize, rtt time.Duration, p float64) units.BitRate {
	if rtt <= 0 {
		return 0
	}
	if p <= 0 {
		return units.BitRate(math.Inf(1))
	}
	bytesPerSec := float64(mss) / rtt.Seconds() / math.Sqrt(p)
	return units.BitRate(bytesPerSec * 8)
}

// MathisThroughputFull is the same bound with the sqrt(3/2) constant from
// Mathis et al. 1997.
func MathisThroughputFull(mss units.ByteSize, rtt time.Duration, p float64) units.BitRate {
	return units.BitRate(MathisConstant) * MathisThroughput(mss, rtt, p)
}

// LossBudget inverts the Mathis equation: the maximum packet loss
// probability that still sustains the target rate at the given MSS and
// RTT. It answers "how clean must a Science DMZ path be?".
func LossBudget(target units.BitRate, mss units.ByteSize, rtt time.Duration) float64 {
	if target <= 0 {
		return 1
	}
	if rtt <= 0 || mss <= 0 {
		return 0
	}
	r := float64(mss) * 8 / rtt.Seconds() / float64(target)
	return r * r
}

// RequiredWindow returns the TCP window needed to fill a path of the
// given rate and RTT — the paper's Equation 2 (1 Gb/s × 10 ms = 1.25 MB).
func RequiredWindow(rate units.BitRate, rtt time.Duration) units.ByteSize {
	return units.BandwidthDelayProduct(rate, rtt)
}

// WindowLimitedRate returns the throughput ceiling imposed by a fixed
// window: window/RTT. With the classic 64 KB window at 10 ms this is
// ~52 Mb/s — the §6.2 observation of "about 50 Mb/s on 1 Gb/s hosts".
func WindowLimitedRate(window units.ByteSize, rtt time.Duration) units.BitRate {
	if rtt <= 0 {
		return 0
	}
	return units.BitRate(float64(window) * 8 / rtt.Seconds())
}

// RecoveryTime estimates how long a Reno-family sender takes to return to
// full rate after a single loss halves its window: it must regain
// W/2 segments at one segment per RTT, where W = BDP/MSS. This is the
// mechanism behind the paper's claim that loss hurts more at higher RTT
// (quadratically: the window deficit is proportional to RTT and the
// regain rate inversely proportional to it).
func RecoveryTime(rate units.BitRate, rtt time.Duration, mss units.ByteSize) time.Duration {
	if mss <= 0 {
		return 0
	}
	w := float64(units.BandwidthDelayProduct(rate, rtt)) / float64(mss)
	ns := w / 2 * float64(rtt)
	// Saturate instead of overflowing: extreme rate×RTT combinations
	// (terabit paths, second-scale RTTs, tiny MSS) exceed int64 ns.
	if ns >= math.MaxInt64 {
		return math.MaxInt64
	}
	return time.Duration(ns)
}

// TransferTime returns the ideal time to move n bytes at the given
// steady-state rate, ignoring slow start — adequate for the multi-GB
// transfers in the paper's use cases.
func TransferTime(n units.ByteSize, rate units.BitRate) time.Duration {
	return rate.Serialize(n)
}

// EffectiveMathisRate caps the Mathis bound by the bottleneck link rate:
// real transfers can never exceed the path, no matter how clean it is.
func EffectiveMathisRate(bottleneck units.BitRate, mss units.ByteSize, rtt time.Duration, p float64) units.BitRate {
	m := MathisThroughput(mss, rtt, p)
	if m > bottleneck {
		return bottleneck
	}
	return m
}
