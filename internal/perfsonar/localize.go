package perfsonar

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Suspect is a link implicated by loss localization, with the evidence.
type Suspect struct {
	// A and B name the link's endpoints.
	A, B string
	// LossyPaths / CleanPaths count measured paths crossing this link
	// that did / did not show loss.
	LossyPaths, CleanPaths int
	// Score ranks suspects: the fraction of crossing paths that were
	// lossy, weighted by how many lossy paths the link explains.
	Score float64
}

func (s Suspect) String() string {
	return fmt.Sprintf("%s<->%s score=%.2f (lossy=%d clean=%d)", s.A, s.B, s.Score, s.LossyPaths, s.CleanPaths)
}

// LocalizeLoss performs the §3.3 troubleshooting step: given a mesh of
// OWAMP loss measurements and the routed topology, it intersects the
// lossy paths and subtracts the clean ones, ranking the links that best
// explain the observations. This is the divide-and-conquer an operator
// runs mentally with a perfSONAR dashboard — here as an algorithm.
//
// Only links crossed by at least one lossy path are returned, highest
// score first. lossThreshold is the mean-loss fraction above which a
// path counts as lossy (e.g. 0.001).
func LocalizeLoss(net *netsim.Network, a *Archive, since sim.Time, lossThreshold float64) []Suspect {
	type key struct{ a, b string }
	linkOf := func(l *netsim.Link) key {
		x, y := l.A.Owner.Name(), l.B.Owner.Name()
		if x > y {
			x, y = y, x
		}
		return key{x, y}
	}
	lossy := make(map[key]int)
	clean := make(map[key]int)

	for _, p := range a.Paths() {
		mean, ok := a.MeanLoss(p, since)
		if !ok {
			continue
		}
		links := net.PathInfo(p.Src, p.Dst)
		if links == nil {
			continue
		}
		for _, l := range links {
			if mean > lossThreshold {
				lossy[linkOf(l)]++
			} else {
				clean[linkOf(l)]++
			}
		}
	}

	var out []Suspect
	for k, n := range lossy {
		c := clean[k]
		frac := float64(n) / float64(n+c)
		out = append(out, Suspect{
			A: k.a, B: k.b,
			LossyPaths: n, CleanPaths: c,
			Score: frac * float64(n),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].A+out[i].B < out[j].A+out[j].B
	})
	return out
}

// HardFailures scans the topology for links reporting loss-of-link — the
// §3.3 "hard failures" that ordinary monitoring catches directly. The
// result is sorted by endpoint names (like DropSites), not creation
// order, so renderings are stable however the topology was assembled.
func HardFailures(net *netsim.Network) []*netsim.Link {
	var out []*netsim.Link
	for _, l := range net.Links() {
		if l.Down() {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ia, ib := out[i].Ends()
		ja, jb := out[j].Ends()
		if ia != ja {
			return ia < ja
		}
		return ib < jb
	})
	return out
}
