package perfsonar

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// meshedBackbone builds 4 sites on two backbone routers:
//
//	psa, psb -- bb1 ---- bb2 -- psc, psd
//
// with failing optics on the bb1--bb2 trunk when trunkLoss is set.
func meshedBackbone(trunkLoss netsim.LossModel) (*netsim.Network, []*netsim.Host, *netsim.Link) {
	n := netsim.New(1)
	bb1 := n.NewDevice("bb1", netsim.DeviceConfig{EgressBuffer: 16 * units.MB})
	bb2 := n.NewDevice("bb2", netsim.DeviceConfig{EgressBuffer: 16 * units.MB})
	trunk := n.Connect(bb1, bb2, netsim.LinkConfig{
		Rate: 10 * units.Gbps, Delay: 5 * time.Millisecond, Loss: trunkLoss,
	})
	var hosts []*netsim.Host
	for i, at := range []*netsim.Device{bb1, bb1, bb2, bb2} {
		h := n.NewHost("ps" + string(rune('a'+i)))
		n.Connect(h, at, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: time.Millisecond})
		hosts = append(hosts, h)
	}
	n.ComputeRoutes()
	return n, hosts, trunk
}

func TestLocalizeLossFindsTrunk(t *testing.T) {
	n, hosts, _ := meshedBackbone(netsim.RandomLoss{P: 0.01})
	m := NewMesh(hosts...)
	m.StartOWAMP(5 * time.Millisecond)
	n.RunFor(30 * time.Second)

	suspects := LocalizeLoss(n, m.Archive, 0, 0.001)
	if len(suspects) == 0 {
		t.Fatal("no suspects found")
	}
	top := suspects[0]
	if !(top.A == "bb1" && top.B == "bb2") {
		t.Errorf("top suspect = %v, want the bb1<->bb2 trunk (all: %v)", top, suspects)
	}
	// Cross-trunk paths (2 hosts each side -> 8 ordered pairs) are
	// lossy; same-side paths are clean, so access links score lower.
	if top.LossyPaths != 8 {
		t.Errorf("trunk lossy paths = %d, want 8", top.LossyPaths)
	}
	for _, s := range suspects[1:] {
		if s.Score >= top.Score {
			t.Errorf("suspect %v scores >= trunk", s)
		}
	}
}

func TestLocalizeLossCleanNetwork(t *testing.T) {
	n, hosts, _ := meshedBackbone(nil)
	m := NewMesh(hosts...)
	m.StartOWAMP(10 * time.Millisecond)
	n.RunFor(20 * time.Second)
	if suspects := LocalizeLoss(n, m.Archive, 0, 0.001); len(suspects) != 0 {
		t.Errorf("clean network produced suspects: %v", suspects)
	}
}

func TestHardFailureVisibleAndCutsTraffic(t *testing.T) {
	n, hosts, trunk := meshedBackbone(nil)
	m := NewMesh(hosts...)
	m.StartOWAMP(10 * time.Millisecond)
	n.RunFor(5 * time.Second)

	if len(HardFailures(n)) != 0 {
		t.Fatal("no hard failures yet")
	}
	trunk.SetDown(true)
	n.RunFor(10 * time.Second)

	// Management view: the link reports down immediately.
	down := HardFailures(n)
	if len(down) != 1 || down[0] != trunk {
		t.Fatalf("hard failures = %v", down)
	}
	// Measurement view: cross-trunk loss goes to 100%.
	loss, ok := m.Archive.MeanLoss(PathKey{Src: "psa", Dst: "psc"}, sim.Time(6*time.Second))
	if !ok || loss < 0.99 {
		t.Errorf("cross-trunk loss after cut = %v (ok=%v), want ~1.0", loss, ok)
	}
	// Same-side paths unaffected.
	loss, ok = m.Archive.MeanLoss(PathKey{Src: "psa", Dst: "psb"}, sim.Time(6*time.Second))
	if !ok || loss != 0 {
		t.Errorf("same-side loss = %v, want 0", loss)
	}

	trunk.SetDown(false)
	n.RunFor(10 * time.Second)
	loss, _ = m.Archive.MeanLoss(PathKey{Src: "psa", Dst: "psc"}, sim.Time(16*time.Second))
	if loss > 0.01 {
		t.Errorf("loss after restore = %v, want ~0", loss)
	}
}

func TestLocalizeLossTwoSimultaneousFaults(t *testing.T) {
	// Two failing optics at once: psa's and psd's access links. Every
	// path touching either host is lossy (6 ordered paths each, zero
	// clean), so both links must take the top two suspect slots —
	// in deterministic lexicographic order — while the trunk, which
	// still carries the clean psb<->psc paths, ranks strictly below.
	n, hosts, _ := meshedBackbone(nil)
	for _, tgt := range []struct {
		a, b string
		p    float64
	}{{"psa", "bb1", 0.02}, {"psd", "bb2", 0.01}} {
		l := n.LinkBetween(tgt.a, tgt.b)
		if l == nil {
			t.Fatalf("no %s<->%s link", tgt.a, tgt.b)
		}
		l.Loss = netsim.RandomLoss{P: tgt.p}
	}
	m := NewMesh(hosts...)
	m.StartOWAMP(5 * time.Millisecond)
	n.RunFor(30 * time.Second)

	suspects := LocalizeLoss(n, m.Archive, 0, 0.001)
	if len(suspects) < 3 {
		t.Fatalf("want the two faulty links plus the implicated trunk, got %v", suspects)
	}
	if !(suspects[0].A == "bb1" && suspects[0].B == "psa") {
		t.Errorf("top suspect = %v, want bb1<->psa (all: %v)", suspects[0], suspects)
	}
	if !(suspects[1].A == "bb2" && suspects[1].B == "psd") {
		t.Errorf("second suspect = %v, want bb2<->psd (all: %v)", suspects[1], suspects)
	}
	// Each faulty access link: 3 peers × 2 directions, no clean path.
	for i := 0; i < 2; i++ {
		if suspects[i].LossyPaths != 6 || suspects[i].CleanPaths != 0 {
			t.Errorf("suspect %d paths = %d lossy/%d clean, want 6/0",
				i, suspects[i].LossyPaths, suspects[i].CleanPaths)
		}
	}
	// The trunk sees loss on paths to psa and psd but is exonerated by
	// the clean psb<->psc pair, so it must score strictly lower.
	for _, s := range suspects[2:] {
		if s.Score >= suspects[1].Score {
			t.Errorf("suspect %v must rank below the faulty access links", s)
		}
		if s.A == "bb1" && s.B == "bb2" && s.CleanPaths == 0 {
			t.Errorf("trunk should have clean exonerating paths: %v", s)
		}
	}
}

func TestHardFailuresSortedDeterministically(t *testing.T) {
	n, _, trunk := meshedBackbone(nil)
	psa := n.LinkBetween("psa", "bb1")
	psd := n.LinkBetween("psd", "bb2")
	for _, l := range []*netsim.Link{psd, trunk, psa} {
		l.SetDown(true)
	}
	want := [][2]string{{"bb1", "bb2"}, {"psa", "bb1"}, {"psd", "bb2"}}
	down := HardFailures(n)
	if len(down) != 3 {
		t.Fatalf("hard failures = %v, want 3", down)
	}
	for i, l := range down {
		a, b := l.Ends()
		if a != want[i][0] || b != want[i][1] {
			t.Errorf("failure %d = %s<->%s, want %s<->%s", i, a, b, want[i][0], want[i][1])
		}
	}
}
