package perfsonar

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// DashboardConfig sets the color scale of the Figure 2 grid: throughput
// at or above Good renders as full blocks, between Warn and Good as
// medium shade, below Warn as light shade.
type DashboardConfig struct {
	Good units.BitRate
	Warn units.BitRate
}

// Cell classifications.
const (
	cellGood   = "OK "
	cellWarn   = "WRN"
	cellBad    = "BAD"
	cellNoData = " - "
	cellSelf   = "   "
)

func classify(cfg DashboardConfig, rate units.BitRate) string {
	switch {
	case rate >= cfg.Good:
		return cellGood
	case rate >= cfg.Warn:
		return cellWarn
	default:
		return cellBad
	}
}

// Dashboard renders the measurement mesh as the paper's Figure 2 grid:
// one row per source site, one column per destination, each cell showing
// the latest BWCTL throughput classification for that direction. (The
// paper's GUI halves each square to show both directions; in a full
// matrix both directions appear as mirrored cells.)
func Dashboard(a *Archive, cfg DashboardConfig, sites []string) string {
	var b strings.Builder
	width := 0
	for _, s := range sites {
		if len(s) > width {
			width = len(s)
		}
	}
	fmt.Fprintf(&b, "%*s ", width, "")
	for i := range sites {
		fmt.Fprintf(&b, "%3d ", i+1)
	}
	b.WriteByte('\n')
	for i, src := range sites {
		fmt.Fprintf(&b, "%*s ", width, fmt.Sprintf("%d:%s", i+1, src))
		for _, dst := range sites {
			if src == dst {
				b.WriteString(cellSelf + " ")
				continue
			}
			m, ok := a.Latest(PathKey{Src: src, Dst: dst}, KindThroughput)
			if !ok {
				b.WriteString(cellNoData + " ")
				continue
			}
			b.WriteString(classify(cfg, m.Throughput) + " ")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WorstPaths returns up to n paths with the lowest latest throughput,
// worst first — what an operator clicks on first.
func WorstPaths(a *Archive, n int) []Measurement {
	var all []Measurement
	for _, p := range a.Paths() {
		if m, ok := a.Latest(p, KindThroughput); ok {
			all = append(all, m)
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].Throughput < all[i].Throughput {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if len(all) > n {
		all = all[:n]
	}
	return all
}
