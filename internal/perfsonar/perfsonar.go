// Package perfsonar models the perfSONAR measurement suite that the
// Science DMZ's performance-monitoring pattern deploys (§3.3).
//
// Two active measurement tools are implemented against the simulated
// network:
//
//   - OWAMP: continuous low-rate one-way UDP probe streams that measure
//     packet loss and one-way delay. Because the probes are real
//     simulated packets, they die in the same queues and on the same
//     failing links as science data — which is how the §2.1 failing line
//     card was found when SNMP error counters showed nothing.
//
//   - BWCTL: scheduled TCP throughput tests (iperf-style, fixed
//     duration) between toolkit hosts, using the real internal/tcp
//     engine.
//
// Results land in a measurement Archive feeding threshold alerting and
// the Figure 2 dashboard grid.
package perfsonar

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// tagPerfsonar attributes measurement events in scheduler telemetry.
var tagPerfsonar = sim.TagFor("perfsonar")

// Well-known ports for the measurement services.
const (
	OwampPort uint16 = 861
	BwctlPort uint16 = 5201
)

// owampProbe is the payload of an OWAMP test packet. Interval carries
// the sender's declared schedule (real OWAMP sessions negotiate it), so
// the receiver can count missing probes even through a total blackout.
type owampProbe struct {
	Seq      uint64
	Sender   string
	Interval time.Duration
}

// owampProbeSize is the on-wire probe size in bytes.
const owampProbeSize units.ByteSize = 64

// Toolkit is a perfSONAR host: it terminates OWAMP probe streams and
// serves BWCTL throughput tests, publishing everything to an Archive.
type Toolkit struct {
	Host    *netsim.Host
	Archive *Archive

	net      *netsim.Network
	srv      *tcp.Server
	receive  map[string]*owampReceiver // sender host -> state
	interval time.Duration             // archive bucketing
}

// NewToolkit attaches a measurement toolkit to a host, publishing to the
// given archive (create one Archive per deployment and share it).
func NewToolkit(h *netsim.Host, archive *Archive) *Toolkit {
	t := &Toolkit{
		Host:     h,
		Archive:  archive,
		net:      h.Network(),
		receive:  make(map[string]*owampReceiver),
		interval: 5 * time.Second,
	}
	h.Bind(netsim.ProtoUDP, OwampPort, netsim.HandlerFunc(t.owampDeliver))
	t.srv = tcp.NewServer(h, BwctlPort, tcp.Tuned())
	return t
}

// owampReceiver tracks one incoming probe stream.
type owampReceiver struct {
	maxSeq   uint64 // highest sequence seen (+1 = expected count)
	received uint64
	delaySum time.Duration
	seen     bool
	schedule time.Duration // sender's declared probe interval

	// Values at the last archive flush.
	lastMax, lastReceived uint64
	lastDelaySum          time.Duration
}

// ensureReceiver registers probe-stream state for a sender and starts
// the control-plane flush ticker that buckets it into the archive. It
// must run in control context (session setup), never from packet
// delivery: under sharded execution owampDeliver executes on the
// receiving host's shard, which must not touch the control scheduler.
func (t *Toolkit) ensureReceiver(sender string) *owampReceiver {
	r := t.receive[sender]
	if r == nil {
		r = &owampReceiver{}
		t.receive[sender] = r
		t.net.Sched.EveryTag(tagPerfsonar, t.interval, func() { t.flushOwamp(sender, r) })
	}
	return r
}

// owampDeliver receives OWAMP probes on the shard-local data path; it
// is bound through a netsim.HandlerFunc adapter the callgraph cannot
// see.
//
//dmz:datapath
func (t *Toolkit) owampDeliver(pkt *netsim.Packet) {
	probe, ok := pkt.Payload.(owampProbe)
	if !ok {
		return
	}
	r := t.receive[probe.Sender]
	if r == nil {
		// A probe with no announced session (the sender never called
		// StartOWAMP toward us): record nothing. Receiver registration
		// is control-plane work and cannot happen on the delivery path.
		return
	}
	if !r.seen || probe.Seq > r.maxSeq {
		r.maxSeq = probe.Seq
		r.seen = true
	}
	r.schedule = probe.Interval
	r.received++
	r.delaySum += t.Host.Now().Sub(pkt.SentAt)
}

// flushOwamp converts the last bucket of probe arrivals into an archived
// loss/delay measurement. A bucket with zero arrivals still archives —
// as 100% loss, per the declared schedule — so a blackout looks like
// what it is rather than a gap in the data.
func (t *Toolkit) flushOwamp(sender string, r *owampReceiver) {
	if !r.seen {
		return
	}
	expected := r.maxSeq + 1 - (r.lastMax + 1)
	if r.lastReceived == 0 && r.lastMax == 0 && r.lastDelaySum == 0 {
		// First bucket: expected counts from sequence zero.
		expected = r.maxSeq + 1
	}
	got := r.received - r.lastReceived
	if got == 0 {
		// Nothing arrived this bucket: infer the expected count from
		// the sender's declared schedule, and advance the sequence
		// accounting past the blackout so the next live bucket is not
		// charged for it too.
		if r.schedule <= 0 {
			return
		}
		r.lastMax += uint64(t.interval / r.schedule)
		if r.lastMax > r.maxSeq {
			r.maxSeq = r.lastMax
		}
		t.Archive.Add(Measurement{
			At:   t.net.Sched.Now(),
			Path: PathKey{Src: sender, Dst: t.Host.Name()},
			Kind: KindLoss,
			Loss: 1,
		})
		return
	}
	if expected == 0 {
		return
	}
	loss := 1 - float64(got)/float64(expected)
	if loss < 0 {
		loss = 0
	}
	delay := (r.delaySum - r.lastDelaySum) / time.Duration(got)
	t.Archive.Add(Measurement{
		At:   t.net.Sched.Now(),
		Path: PathKey{Src: sender, Dst: t.Host.Name()},
		Kind: KindLoss,
		Loss: loss, Delay: delay,
	})
	r.lastMax, r.lastReceived, r.lastDelaySum = r.maxSeq, r.received, r.delaySum
}

// OwampSession is a continuous probe stream to one peer.
type OwampSession struct {
	From, To *Toolkit
	Interval time.Duration

	seq    uint64
	ticker *sim.Ticker
}

// Sent returns the number of probes emitted so far.
func (s *OwampSession) Sent() uint64 { return s.seq }

// Stop ends the probe stream.
func (s *OwampSession) Stop() { s.ticker.Stop() }

// StartOWAMP begins probing the peer at the given interval (e.g. 100 ms
// for 10 probes/s). Results appear in the shared archive, attributed to
// the path from this toolkit's host to the peer's.
func (t *Toolkit) StartOWAMP(peer *Toolkit, interval time.Duration) *OwampSession {
	s := &OwampSession{From: t, To: peer, Interval: interval}
	peer.ensureReceiver(t.Host.Name())
	s.ticker = t.net.Sched.EveryTag(tagPerfsonar, interval, func() {
		t.Host.Send(&netsim.Packet{
			Flow: netsim.FlowKey{
				Src: t.Host.Name(), Dst: peer.Host.Name(),
				SrcPort: OwampPort, DstPort: OwampPort,
				Proto: netsim.ProtoUDP,
			},
			Size:    owampProbeSize,
			Payload: owampProbe{Seq: s.seq, Sender: t.Host.Name(), Interval: interval},
		})
		s.seq++
	})
	return s
}

// RunBWCTL starts one fixed-duration TCP throughput test toward the peer
// and archives the result when it ends.
func (t *Toolkit) RunBWCTL(peer *Toolkit, duration time.Duration, opts tcp.Options) {
	conn := tcp.Dial(t.Host, peer.srv, -1, opts, nil)
	t.net.Sched.AfterTag(tagPerfsonar, duration, func() {
		st := conn.Stats()
		conn.Abort()
		t.Archive.Add(Measurement{
			At:         t.net.Sched.Now(),
			Path:       PathKey{Src: t.Host.Name(), Dst: peer.Host.Name()},
			Kind:       KindThroughput,
			Throughput: st.Throughput(),
		})
	})
}

// ScheduleBWCTL runs a test every period, the first after initialDelay
// (stagger tests in a mesh so they do not measure each other).
func (t *Toolkit) ScheduleBWCTL(peer *Toolkit, initialDelay, period, duration time.Duration, opts tcp.Options) *sim.Ticker {
	var tick *sim.Ticker
	t.net.Sched.After(initialDelay, func() {
		t.RunBWCTL(peer, duration, opts)
		tick = t.net.Sched.Every(period, func() { t.RunBWCTL(peer, duration, opts) })
	})
	return tick
}

// Mesh wires toolkits onto a set of hosts with a shared archive and runs
// full-mesh regular testing — the deployment behind Figure 2.
type Mesh struct {
	Toolkits []*Toolkit
	Archive  *Archive

	net *netsim.Network
}

// NewMesh creates toolkits on each host sharing one archive.
func NewMesh(hosts ...*netsim.Host) *Mesh {
	if len(hosts) == 0 {
		panic("perfsonar: mesh needs at least one host")
	}
	m := &Mesh{Archive: NewArchive(), net: hosts[0].Network()}
	for _, h := range hosts {
		m.Toolkits = append(m.Toolkits, NewToolkit(h, m.Archive))
	}
	if tele := m.net.Telemetry(); tele != nil {
		m.Archive.BindRegistry(tele.Registry)
	}
	return m
}

// StartOWAMP begins probe streams on every ordered pair and returns the
// sessions in deployment order. The closed-loop fault monitor starts
// probing on demand and needs the handles; Figure 2-style deployments
// may ignore them.
func (m *Mesh) StartOWAMP(interval time.Duration) []*OwampSession {
	var out []*OwampSession
	for _, a := range m.Toolkits {
		for _, b := range m.Toolkits {
			if a != b {
				out = append(out, a.StartOWAMP(b, interval))
			}
		}
	}
	return out
}

// StartBWCTL schedules staggered throughput tests on every ordered pair:
// each test lasts duration, pairs take turns, and every pair repeats
// each period.
func (m *Mesh) StartBWCTL(period, duration time.Duration, opts tcp.Options) {
	slot := 0
	for _, a := range m.Toolkits {
		for _, b := range m.Toolkits {
			if a == b {
				continue
			}
			a.ScheduleBWCTL(b, time.Duration(slot)*duration, period, duration, opts)
			slot++
		}
	}
}
