package perfsonar

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// PathKey identifies a measured direction between two hosts.
type PathKey struct {
	Src, Dst string
}

func (k PathKey) String() string { return k.Src + ">" + k.Dst }

// Kind distinguishes measurement types in the archive.
type Kind uint8

// Measurement kinds.
const (
	KindLoss       Kind = iota // OWAMP: loss fraction + mean one-way delay
	KindThroughput             // BWCTL: achieved TCP throughput
)

func (k Kind) String() string {
	if k == KindLoss {
		return "loss"
	}
	return "throughput"
}

// Measurement is one archived result.
type Measurement struct {
	At   sim.Time
	Path PathKey
	Kind Kind

	Loss       float64
	Delay      time.Duration
	Throughput units.BitRate
}

func (m Measurement) String() string {
	switch m.Kind {
	case KindLoss:
		return fmt.Sprintf("%v %s loss=%.4f%% delay=%v", m.At, m.Path, m.Loss*100, m.Delay)
	default:
		return fmt.Sprintf("%v %s throughput=%v", m.At, m.Path, m.Throughput)
	}
}

// Archive is the measurement store (the "measurement archive" of a
// perfSONAR deployment). Subscribers receive every measurement as it is
// published — the hook the Alerter uses.
type Archive struct {
	byPath      map[PathKey][]Measurement
	subscribers []func(Measurement)
}

// NewArchive creates an empty archive.
func NewArchive() *Archive {
	return &Archive{byPath: make(map[PathKey][]Measurement)}
}

// Add publishes a measurement.
func (a *Archive) Add(m Measurement) {
	a.byPath[m.Path] = append(a.byPath[m.Path], m)
	for _, fn := range a.subscribers {
		fn(m)
	}
}

// Subscribe registers a callback invoked for every new measurement.
func (a *Archive) Subscribe(fn func(Measurement)) {
	a.subscribers = append(a.subscribers, fn)
}

// Query returns measurements for a path and kind at or after since, in
// time order.
func (a *Archive) Query(path PathKey, kind Kind, since sim.Time) []Measurement {
	var out []Measurement
	for _, m := range a.byPath[path] {
		if m.Kind == kind && m.At >= since {
			out = append(out, m)
		}
	}
	return out
}

// Latest returns the most recent measurement of the kind for the path.
func (a *Archive) Latest(path PathKey, kind Kind) (Measurement, bool) {
	ms := a.byPath[path]
	for i := len(ms) - 1; i >= 0; i-- {
		if ms[i].Kind == kind {
			return ms[i], true
		}
	}
	return Measurement{}, false
}

// Paths returns every path with data, sorted.
func (a *Archive) Paths() []PathKey {
	out := make([]PathKey, 0, len(a.byPath))
	for k := range a.byPath {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// BindRegistry publishes the archive into a telemetry registry: a
// snapshot-time collector exposes, per measured path, the most recent
// loss fraction, mean one-way delay, and BWCTL throughput, plus the
// per-path measurement count. With this bound, registry snapshots are
// the single measurement plane — simulator-internal counters and
// end-to-end perfSONAR results land in the same deterministic export.
func (a *Archive) BindRegistry(reg *telemetry.Registry) {
	reg.RegisterCollector("perfsonar", func(emit telemetry.EmitFunc) {
		for _, path := range a.Paths() {
			l := telemetry.Labels{"src": path.Src, "dst": path.Dst}
			emit("perfsonar_measurements", l, float64(len(a.byPath[path])))
			if m, ok := a.Latest(path, KindLoss); ok {
				emit("perfsonar_loss_fraction", l, m.Loss)
				emit("perfsonar_delay_seconds", l, m.Delay.Seconds())
			}
			if m, ok := a.Latest(path, KindThroughput); ok {
				emit("perfsonar_throughput_bps", l, float64(m.Throughput))
			}
		}
	})
}

// MeanLoss returns the average measured loss on a path since the given
// time, and whether any loss data existed.
func (a *Archive) MeanLoss(path PathKey, since sim.Time) (float64, bool) {
	ms := a.Query(path, KindLoss, since)
	if len(ms) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, m := range ms {
		sum += m.Loss
	}
	return sum / float64(len(ms)), true
}

// AlertKind classifies alerts.
type AlertKind uint8

// Alert kinds.
const (
	AlertLoss AlertKind = iota
	AlertThroughput
)

func (k AlertKind) String() string {
	if k == AlertLoss {
		return "loss"
	}
	return "throughput"
}

// Alert is a threshold violation raised by the Alerter.
type Alert struct {
	At    sim.Time
	Path  PathKey
	Kind  AlertKind
	Value float64 // loss fraction, or throughput in bits/s
}

func (a Alert) String() string {
	if a.Kind == AlertLoss {
		return fmt.Sprintf("%v ALERT %s: loss %.4f%%", a.At, a.Path, a.Value*100)
	}
	return fmt.Sprintf("%v ALERT %s: throughput %v", a.At, a.Path, units.BitRate(a.Value))
}

// Alerter raises alerts when measurements cross thresholds — the
// "timely alerts" of §3.3 that turn soft failures from months-long
// mysteries into same-day tickets.
type Alerter struct {
	// LossThreshold raises AlertLoss when a loss measurement exceeds it.
	// The default (when zero) is 0.001 — TCP suffers far below 1%.
	LossThreshold float64

	// ThroughputFloor raises AlertThroughput when a BWCTL result falls
	// below it. Zero disables throughput alerting.
	ThroughputFloor units.BitRate

	// Alerts collects raised alerts in time order.
	Alerts []Alert

	// OnAlert, when set, is called for each alert as it fires.
	OnAlert func(Alert)
}

// Watch subscribes the alerter to an archive.
func (al *Alerter) Watch(a *Archive) {
	a.Subscribe(func(m Measurement) {
		switch m.Kind {
		case KindLoss:
			threshold := al.LossThreshold
			if threshold == 0 {
				threshold = 0.001
			}
			if m.Loss > threshold {
				al.raise(Alert{At: m.At, Path: m.Path, Kind: AlertLoss, Value: m.Loss})
			}
		case KindThroughput:
			if al.ThroughputFloor > 0 && m.Throughput < al.ThroughputFloor {
				al.raise(Alert{At: m.At, Path: m.Path, Kind: AlertThroughput, Value: float64(m.Throughput)})
			}
		}
	})
}

func (al *Alerter) raise(a Alert) {
	al.Alerts = append(al.Alerts, a)
	if al.OnAlert != nil {
		al.OnAlert(a)
	}
}

// AlertedPaths returns the distinct paths with at least one alert,
// sorted — the troubleshooting starting point.
func (al *Alerter) AlertedPaths() []PathKey {
	seen := make(map[PathKey]bool)
	var out []PathKey
	for _, a := range al.Alerts {
		if !seen[a.Path] {
			seen[a.Path] = true
			out = append(out, a.Path)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
