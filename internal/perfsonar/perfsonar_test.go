package perfsonar

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// star builds N measurement hosts around one core switch, 10G links.
func star(n int, wanDelay time.Duration) (*netsim.Network, []*netsim.Host) {
	net := netsim.New(1)
	core := net.NewDevice("core", netsim.DeviceConfig{EgressBuffer: 16 * units.MB})
	var hosts []*netsim.Host
	for i := 0; i < n; i++ {
		h := net.NewHost(psName(i))
		net.Connect(h, core, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: wanDelay})
		hosts = append(hosts, h)
	}
	net.ComputeRoutes()
	return net, hosts
}

func psName(i int) string { return "ps" + string(rune('a'+i)) }

func TestOWAMPCleanPathZeroLoss(t *testing.T) {
	net, hosts := star(2, time.Millisecond)
	m := NewMesh(hosts...)
	m.Toolkits[0].StartOWAMP(m.Toolkits[1], 10*time.Millisecond)
	net.RunFor(30 * time.Second)
	path := PathKey{Src: "psa", Dst: "psb"}
	loss, ok := m.Archive.MeanLoss(path, 0)
	if !ok {
		t.Fatal("no loss measurements archived")
	}
	if loss != 0 {
		t.Errorf("clean path loss = %v, want 0", loss)
	}
	latest, _ := m.Archive.Latest(path, KindLoss)
	// One-way delay = propagation (2 hops x 1ms) + serialization noise.
	if latest.Delay < 2*time.Millisecond || latest.Delay > 3*time.Millisecond {
		t.Errorf("delay = %v, want ~2ms", latest.Delay)
	}
}

func TestOWAMPDetectsSoftFailure(t *testing.T) {
	// The §2.1 scenario end-to-end: a failing link drops 1/22000 packets.
	// SNMP counters show nothing; OWAMP sees the loss.
	net := netsim.New(1)
	a := net.NewHost("psa")
	b := net.NewHost("psb")
	core := net.NewDevice("core", netsim.DeviceConfig{})
	net.Connect(a, core, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: time.Millisecond})
	bad := net.Connect(core, b, netsim.LinkConfig{
		Rate: 10 * units.Gbps, Delay: time.Millisecond,
		Loss: &netsim.PeriodicLoss{N: 220}, // accelerated for probe rates
	})
	net.ComputeRoutes()
	m := NewMesh(a, b)
	al := &Alerter{LossThreshold: 0.001}
	al.Watch(m.Archive)
	m.Toolkits[0].StartOWAMP(m.Toolkits[1], time.Millisecond) // 1000/s
	net.RunFor(60 * time.Second)

	loss, ok := m.Archive.MeanLoss(PathKey{Src: "psa", Dst: "psb"}, 0)
	if !ok {
		t.Fatal("no measurements")
	}
	if loss < 0.003 || loss > 0.006 {
		t.Errorf("measured loss = %.5f, want ~1/220=0.0045", loss)
	}
	if len(al.Alerts) == 0 {
		t.Error("alerter should have fired on soft-failure loss")
	}
	// The ground truth the paper emphasizes: device counters are silent.
	for _, p := range core.Ports() {
		if p.Counters.QueueDrops != 0 {
			t.Error("SNMP-visible drops should be zero for wire loss")
		}
	}
	if bad.WireDrops == 0 {
		t.Error("wire should have dropped probes")
	}
}

func TestBWCTLMeasuresThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation; skipped in -short")
	}
	net, hosts := star(2, 5*time.Millisecond)
	m := NewMesh(hosts...)
	m.Toolkits[0].RunBWCTL(m.Toolkits[1], 3*time.Second, tcp.Tuned())
	net.RunFor(5 * time.Second)
	got, ok := m.Archive.Latest(PathKey{Src: "psa", Dst: "psb"}, KindThroughput)
	if !ok {
		t.Fatal("no throughput measurement")
	}
	gbps := float64(got.Throughput) / 1e9
	if gbps < 5 {
		t.Errorf("BWCTL measured %.2f Gbps on a clean 10G path, want > 5", gbps)
	}
}

func TestMeshFullCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation; skipped in -short")
	}
	net, hosts := star(4, time.Millisecond)
	m := NewMesh(hosts...)
	m.StartOWAMP(50 * time.Millisecond)
	m.StartBWCTL(60*time.Second, time.Second, tcp.Tuned())
	net.RunFor(30 * time.Second)
	// 4 sites -> 12 ordered pairs, each with loss data.
	paths := m.Archive.Paths()
	lossPaths := 0
	for _, p := range paths {
		if _, ok := m.Archive.Latest(p, KindLoss); ok {
			lossPaths++
		}
	}
	if lossPaths != 12 {
		t.Errorf("loss-measured paths = %d, want 12", lossPaths)
	}
	thrPaths := 0
	for _, p := range paths {
		if _, ok := m.Archive.Latest(p, KindThroughput); ok {
			thrPaths++
		}
	}
	if thrPaths != 12 {
		t.Errorf("throughput-measured paths = %d, want 12", thrPaths)
	}
}

func TestDashboardRendersDegradedPath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation; skipped in -short")
	}
	// Mesh with one soft-failing access link: the dashboard must show
	// BAD/WRN cells for paths via that link and OK elsewhere.
	net := netsim.New(1)
	core := net.NewDevice("core", netsim.DeviceConfig{EgressBuffer: 16 * units.MB})
	var hosts []*netsim.Host
	for i := 0; i < 3; i++ {
		h := net.NewHost(psName(i))
		cfg := netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: 2 * time.Millisecond}
		if i == 2 {
			cfg.Loss = netsim.RandomLoss{P: 0.002} // failing optics on psc
		}
		net.Connect(h, core, cfg)
		hosts = append(hosts, h)
	}
	net.ComputeRoutes()
	m := NewMesh(hosts...)
	m.StartBWCTL(30*time.Second, 2*time.Second, tcp.Tuned())
	net.RunFor(30 * time.Second)

	cfg := DashboardConfig{Good: 4 * units.Gbps, Warn: units.Gbps}
	grid := Dashboard(m.Archive, cfg, []string{"psa", "psb", "psc"})
	if !strings.Contains(grid, "OK") {
		t.Errorf("dashboard should show healthy cells:\n%s", grid)
	}
	if !strings.Contains(grid, "BAD") && !strings.Contains(grid, "WRN") {
		t.Errorf("dashboard should show the degraded path:\n%s", grid)
	}
	// Worst path must involve psc.
	worst := WorstPaths(m.Archive, 1)
	if len(worst) != 1 {
		t.Fatal("no worst path")
	}
	if worst[0].Path.Src != "psc" && worst[0].Path.Dst != "psc" {
		t.Errorf("worst path = %v, want one involving psc", worst[0].Path)
	}
}

func TestDashboardNoData(t *testing.T) {
	a := NewArchive()
	grid := Dashboard(a, DashboardConfig{Good: units.Gbps, Warn: 100 * units.Mbps}, []string{"x", "y"})
	if !strings.Contains(grid, " - ") {
		t.Errorf("empty archive should render no-data cells:\n%s", grid)
	}
}

func TestThroughputFloorAlert(t *testing.T) {
	a := NewArchive()
	al := &Alerter{ThroughputFloor: units.Gbps}
	al.Watch(a)
	var fired []Alert
	al.OnAlert = func(x Alert) { fired = append(fired, x) }
	a.Add(Measurement{Path: PathKey{"a", "b"}, Kind: KindThroughput, Throughput: 500 * units.Mbps})
	a.Add(Measurement{Path: PathKey{"a", "c"}, Kind: KindThroughput, Throughput: 5 * units.Gbps})
	if len(al.Alerts) != 1 || len(fired) != 1 {
		t.Fatalf("alerts = %d, want 1", len(al.Alerts))
	}
	if al.Alerts[0].Kind != AlertThroughput {
		t.Error("wrong alert kind")
	}
	if paths := al.AlertedPaths(); len(paths) != 1 || paths[0] != (PathKey{"a", "b"}) {
		t.Errorf("alerted paths = %v", paths)
	}
}

func TestArchiveQueryAndSince(t *testing.T) {
	a := NewArchive()
	p := PathKey{"a", "b"}
	a.Add(Measurement{At: 100, Path: p, Kind: KindLoss, Loss: 0.1})
	a.Add(Measurement{At: 200, Path: p, Kind: KindLoss, Loss: 0.2})
	a.Add(Measurement{At: 300, Path: p, Kind: KindThroughput, Throughput: units.Gbps})
	if got := a.Query(p, KindLoss, 150); len(got) != 1 || got[0].Loss != 0.2 {
		t.Errorf("Query since = %v", got)
	}
	if m, ok := a.Latest(p, KindLoss); !ok || m.Loss != 0.2 {
		t.Error("Latest loss wrong")
	}
	if _, ok := a.Latest(PathKey{"x", "y"}, KindLoss); ok {
		t.Error("Latest for unknown path should be !ok")
	}
	if mean, _ := a.MeanLoss(p, 0); mean < 0.149 || mean > 0.151 {
		t.Errorf("mean loss = %v", mean)
	}
	if _, ok := a.MeanLoss(PathKey{"x", "y"}, 0); ok {
		t.Error("MeanLoss for unknown path should be !ok")
	}
}

func TestMeasurementStrings(t *testing.T) {
	m := Measurement{Path: PathKey{"a", "b"}, Kind: KindLoss, Loss: 0.0046}
	if !strings.Contains(m.String(), "loss") {
		t.Error("loss String")
	}
	m2 := Measurement{Path: PathKey{"a", "b"}, Kind: KindThroughput, Throughput: units.Gbps}
	if !strings.Contains(m2.String(), "throughput") {
		t.Error("throughput String")
	}
	al := Alert{Path: PathKey{"a", "b"}, Kind: AlertLoss, Value: 0.01}
	if !strings.Contains(al.String(), "ALERT") {
		t.Error("alert String")
	}
	if KindLoss.String() != "loss" || KindThroughput.String() != "throughput" {
		t.Error("kind String")
	}
	if AlertLoss.String() != "loss" || AlertThroughput.String() != "throughput" {
		t.Error("alert kind String")
	}
}

func TestOwampSessionStop(t *testing.T) {
	net, hosts := star(2, time.Millisecond)
	m := NewMesh(hosts...)
	s := m.Toolkits[0].StartOWAMP(m.Toolkits[1], 10*time.Millisecond)
	net.RunFor(time.Second)
	sent := s.Sent()
	if sent < 90 {
		t.Errorf("sent = %d, want ~100", sent)
	}
	s.Stop()
	net.RunFor(time.Second)
	if s.Sent() != sent {
		t.Error("probes continued after Stop")
	}
}
