// Package rdma models RDMA over Converged Ethernet (RoCE) transfers
// (§7.1). Two properties matter to the paper's argument:
//
//   - RoCE moves data with a tiny fraction of TCP's CPU cost — Kissel et
//     al. measured the same 39.5 Gb/s single flow on a 40GE host at ~50x
//     less CPU utilization than TCP.
//
//   - RoCE's transport is hardware go-back-N with no congestion control:
//     it runs at the provisioned rate on a clean, guaranteed-bandwidth
//     virtual circuit, and collapses under the slightest competing-
//     traffic loss. "RoCE has been demonstrated to work well over a wide
//     area network, but only on a guaranteed bandwidth virtual circuit
//     with minimal competing traffic."
//
// The Transfer engine paces UDP-protocol packets at the configured rate,
// the receiver NACKs sequence gaps, and each loss rewinds the sender —
// go-back-N exactly as an RDMA NIC would.
package rdma

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// CPUModel converts moved bytes into CPU time, for the §7.1 comparison.
type CPUModel struct {
	Name          string
	CyclesPerByte float64
	ClockHz       float64
}

// Calibrated host CPU models: the ratio (50x) is the paper's measured
// comparison; absolute values assume a 2.5 GHz core.
var (
	TCPCPUCost  = CPUModel{Name: "tcp", CyclesPerByte: 2.0, ClockHz: 2.5e9}
	RoCECPUCost = CPUModel{Name: "roce", CyclesPerByte: 0.04, ClockHz: 2.5e9}
)

// CPUSeconds returns core-seconds consumed moving n bytes.
func (m CPUModel) CPUSeconds(n units.ByteSize) float64 {
	return float64(n) * m.CyclesPerByte / m.ClockHz
}

// Utilization returns the core count (1.0 = one full core) needed to
// sustain the given rate.
func (m CPUModel) Utilization(rate units.BitRate) float64 {
	return float64(rate) / 8 * m.CyclesPerByte / m.ClockHz
}

// rdmaHeader is the per-packet overhead (Ethernet+IP+UDP+IB BTH).
const rdmaHeader units.ByteSize = 66

// ackEvery is the receiver's coalesced-ACK interval in packets.
const ackEvery = 32

// retryTimeout is the sender's progress watchdog.
const retryTimeout = 100 * time.Millisecond

// Options configures a RoCE transfer.
type Options struct {
	// Rate is the hardware injection rate (required): RDMA NICs pace at
	// line or provisioned rate, there is no congestion control.
	Rate units.BitRate

	// MTU is the wire MTU; zero uses the routed path MTU.
	MTU int
}

// Result summarizes a finished (or aborted) transfer.
type Result struct {
	Size       units.ByteSize
	Start, End sim.Time
	Done       bool
	Rewinds    int // go-back-N events (NACK or timeout)
	WastedWire units.ByteSize

	// CPU cost of the transfer under the RoCE model, and what the same
	// bytes would have cost TCP — the §7.1 comparison.
	CPUSeconds    float64
	TCPCPUSeconds float64
}

// Duration returns elapsed transfer time.
func (r *Result) Duration() time.Duration { return r.End.Sub(r.Start) }

// Throughput returns goodput over the transfer lifetime.
func (r *Result) Throughput() units.BitRate {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return units.Rate(r.Size, d)
}

// Flow is an in-progress RoCE transfer.
type Flow struct {
	net     *netsim.Network
	src     *netsim.Host
	flow    netsim.FlowKey
	rate    units.BitRate
	payload int64 // payload bytes per packet
	total   int64

	sndNxt    int64
	maxSent   int64
	lastAcked int64
	sent      units.ByteSize

	rcvNxt      int64
	nackPending bool
	sinceAck    int

	res       Result
	onDone    func(*Result)
	watchdog  sim.Timer
	sendTimer sim.Timer
	done      bool
}

// Transfer starts a RoCE transfer of size bytes from src to dst on the
// given destination port, returning the flow handle. onDone may be nil.
func Transfer(src, dst *netsim.Host, port uint16, size units.ByteSize, opts Options, onDone func(*Result)) *Flow {
	if opts.Rate <= 0 {
		panic("rdma: Options.Rate is required")
	}
	net := src.Network()
	mtu := opts.MTU
	if mtu == 0 {
		mtu = net.PathMTU(src.Name(), dst.Name())
		if mtu == 0 {
			mtu = netsim.DefaultMTU
		}
	}
	f := &Flow{
		net:     net,
		src:     src,
		rate:    opts.Rate,
		payload: int64(mtu) - int64(rdmaHeader),
		total:   int64(size),
		flow: netsim.FlowKey{
			Src: src.Name(), Dst: dst.Name(),
			SrcPort: src.EphemeralPort(), DstPort: port,
			Proto: netsim.ProtoUDP,
		},
		onDone: onDone,
	}
	f.res = Result{Size: size, Start: src.Now()}
	src.Bind(netsim.ProtoUDP, f.flow.SrcPort, netsim.HandlerFunc(f.senderDeliver))
	dst.Bind(netsim.ProtoUDP, port, netsim.HandlerFunc(f.receiverDeliver))
	f.armWatchdog()
	f.sendNext()
	return f
}

// Result returns a snapshot of the transfer result (End = now while in
// progress).
func (f *Flow) Result() *Result {
	r := f.res
	if !f.done {
		r.End = f.src.Now()
	}
	r.CPUSeconds = RoCECPUCost.CPUSeconds(r.Size)
	r.TCPCPUSeconds = TCPCPUCost.CPUSeconds(r.Size)
	return &r
}

func (f *Flow) chunk(seq int64) int64 {
	remaining := f.total - seq
	if remaining <= 0 {
		return 0
	}
	if remaining < f.payload {
		return remaining
	}
	return f.payload
}

// sendNext transmits the next packet and schedules the following one at
// the paced interval — hardware pacing, no ack clock.
func (f *Flow) sendNext() {
	if f.done {
		return
	}
	length := f.chunk(f.sndNxt)
	if length == 0 {
		return // all sent; waiting on ACKs or watchdog
	}
	pkt := &netsim.Packet{
		Flow: f.flow,
		Size: units.ByteSize(length) + rdmaHeader,
		Seq:  f.sndNxt,
	}
	if f.sndNxt < f.maxSent {
		// Rewound region: this wire time is waste.
		f.res.WastedWire += pkt.Size
	}
	f.src.Send(pkt)
	f.sent += pkt.Size
	f.sndNxt += length
	if f.sndNxt > f.maxSent {
		f.maxSent = f.sndNxt
	}
	interval := f.rate.Serialize(pkt.Size)
	f.sendTimer = f.src.EventScheduler().After(interval, f.sendNext)
}

// senderDeliver handles ACKs and NACKs from the receiver. It is bound
// through a netsim.HandlerFunc adapter the callgraph cannot see.
//
//dmz:datapath
func (f *Flow) senderDeliver(pkt *netsim.Packet) {
	if f.done {
		return
	}
	switch {
	case pkt.Flags.Has(netsim.FlagRST): // NACK: rewind to the gap
		f.rewind(pkt.Ack, "nack")
	case pkt.Flags.Has(netsim.FlagACK):
		if pkt.Ack > f.lastAcked {
			f.lastAcked = pkt.Ack
			f.armWatchdog()
		}
		if f.lastAcked >= f.total {
			f.complete()
		}
	}
}

func (f *Flow) rewind(to int64, why string) {
	if to < f.lastAcked {
		to = f.lastAcked
	}
	if to >= f.sndNxt {
		return
	}
	f.res.Rewinds++
	f.sndNxt = to
	f.sendTimer.Stop()
	f.sendNext()
	_ = why
}

func (f *Flow) armWatchdog() {
	f.watchdog.Stop()
	f.watchdog = f.src.EventScheduler().After(retryTimeout, func() {
		if f.done {
			return
		}
		f.rewind(f.lastAcked, "timeout")
		f.armWatchdog()
	})
}

// receiverDeliver is the responder: in-order data advances rcvNxt, gaps
// trigger one NACK per gap, and every ackEvery packets a coalesced ACK
// returns. It is bound through a netsim.HandlerFunc adapter the
// callgraph cannot see.
//
//dmz:datapath
func (f *Flow) receiverDeliver(pkt *netsim.Packet) {
	payload := int64(pkt.Size - rdmaHeader)
	switch {
	case pkt.Seq == f.rcvNxt:
		f.rcvNxt += payload
		f.nackPending = false
		f.sinceAck++
		if f.sinceAck >= ackEvery || f.rcvNxt >= f.total {
			f.sinceAck = 0
			f.sendControl(netsim.FlagACK)
		}
	case pkt.Seq > f.rcvNxt:
		// Gap: go-back-N discards out-of-order data entirely.
		if !f.nackPending {
			f.nackPending = true
			f.sendControl(netsim.FlagRST)
		}
	default:
		// Duplicate from a rewind; count the overlap as waste and ack.
		f.sinceAck++
		if end := pkt.Seq + payload; end > f.rcvNxt {
			f.rcvNxt = end
			f.nackPending = false
		}
	}
}

func (f *Flow) sendControl(flags netsim.Flags) {
	dst := f.net.Host(f.flow.Dst)
	dst.Send(&netsim.Packet{
		Flow:  f.flow.Reverse(),
		Size:  rdmaHeader,
		Flags: flags,
		Ack:   f.rcvNxt,
	})
}

func (f *Flow) complete() {
	f.done = true
	f.res.Done = true
	f.res.End = f.src.Now()
	f.watchdog.Stop()
	f.sendTimer.Stop()
	f.src.Unbind(netsim.ProtoUDP, f.flow.SrcPort)
	f.net.Host(f.flow.Dst).Unbind(netsim.ProtoUDP, f.flow.DstPort)
	if f.onDone != nil {
		r := f.Result()
		f.onDone(r)
	}
}
