package rdma

import (
	"math"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/netsim"
	"repro/internal/units"
)

// wan40 builds dtn1 -- sw1 -- sw2 -- dtn2 at 40GE with jumbo frames and
// a cross-traffic host at sw1.
func wan40() (*netsim.Network, *netsim.Host, *netsim.Host, *netsim.Host) {
	n := netsim.New(1)
	d1 := n.NewHost("dtn1")
	d2 := n.NewHost("dtn2")
	x := n.NewHost("cross")
	sw1 := n.NewDevice("sw1", netsim.DeviceConfig{EgressBuffer: 2 * units.MB})
	sw2 := n.NewDevice("sw2", netsim.DeviceConfig{EgressBuffer: 2 * units.MB})
	cfg := netsim.LinkConfig{Rate: 40 * units.Gbps, Delay: 10 * time.Microsecond, MTU: 9000}
	wan := cfg
	wan.Delay = 10 * time.Millisecond
	n.Connect(d1, sw1, cfg)
	n.Connect(sw1, sw2, wan)
	n.Connect(sw2, d2, cfg)
	n.Connect(x, sw1, cfg)
	n.ComputeRoutes()
	return n, d1, d2, x
}

func TestCleanCircuitNearLineRate(t *testing.T) {
	// §7.1: 39.5 Gb/s for a single flow on a 40GE host over a circuit.
	n, d1, d2, _ := wan40()
	var res *Result
	Transfer(d1, d2, 4791, 2*units.GB, Options{Rate: units.BitRate(39.5) * units.Gbps}, func(r *Result) { res = r })
	n.Run()
	if res == nil || !res.Done {
		t.Fatal("transfer did not complete")
	}
	gbps := float64(res.Throughput()) / 1e9
	// Lifetime average includes the final-ACK round trip; ~37+ of 39.5
	// provisioned is line-rate behaviour.
	if gbps < 37 {
		t.Errorf("clean-path RoCE = %.2f Gbps, want ~39.5", gbps)
	}
	if res.Rewinds != 0 {
		t.Errorf("rewinds = %d, want 0 on a clean path", res.Rewinds)
	}
}

func TestCPUFiftyTimesLessThanTCP(t *testing.T) {
	n, d1, d2, _ := wan40()
	var res *Result
	Transfer(d1, d2, 4791, 100*units.MB, Options{Rate: 39.5 * units.Gbps}, func(r *Result) { res = r })
	n.Run()
	ratio := res.TCPCPUSeconds / res.CPUSeconds
	if math.Abs(ratio-50) > 1e-9 {
		t.Errorf("TCP/RoCE CPU ratio = %.1f, want 50", ratio)
	}
	// Utilization helper: TCP at 39.5G vs RoCE at 39.5G.
	ut := TCPCPUCost.Utilization(39.5 * units.Gbps)
	ur := RoCECPUCost.Utilization(39.5 * units.Gbps)
	if ut/ur < 49.9 || ut/ur > 50.1 {
		t.Errorf("utilization ratio = %.1f", ut/ur)
	}
	if ur > 0.1 {
		t.Errorf("RoCE utilization = %.3f cores, want well under a core", ur)
	}
}

func TestLossCollapsesGoBackN(t *testing.T) {
	// Even mild random loss devastates go-back-N at high BDP.
	n := netsim.New(1)
	d1 := n.NewHost("dtn1")
	d2 := n.NewHost("dtn2")
	n.Connect(d1, d2, netsim.LinkConfig{
		Rate: 10 * units.Gbps, Delay: 10 * time.Millisecond, MTU: 9000,
		Loss: netsim.RandomLoss{P: 1e-3},
	})
	n.ComputeRoutes()
	var res *Result
	Transfer(d1, d2, 4791, 200*units.MB, Options{Rate: 9.5 * units.Gbps}, func(r *Result) { res = r })
	n.RunFor(10 * time.Minute)
	if res == nil {
		t.Fatal("transfer did not finish within 10 minutes")
	}
	gbps := float64(res.Throughput()) / 1e9
	if gbps > 4 {
		t.Errorf("lossy RoCE = %.2f Gbps, expected collapse well below line rate", gbps)
	}
	if res.Rewinds == 0 {
		t.Error("expected go-back-N rewinds under loss")
	}
	if res.WastedWire == 0 {
		t.Error("expected wasted wire bytes from rewinds")
	}
}

func TestCompetingTrafficWithoutCircuitHurtsRoCE(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation; skipped in -short")
	}
	// The §7.1 caveat: RoCE works well over the WAN "but only on a
	// guaranteed bandwidth virtual circuit with minimal competing
	// traffic". An unresponsive competing stream that oversubscribes the
	// shared link collapses go-back-N; a reserved circuit's priority
	// lane protects it completely.
	run := func(useCircuit bool) float64 {
		n, d1, d2, x := wan40()
		if useCircuit {
			svc := circuit.NewService(n, "wan")
			if _, err := svc.Reserve("roce", "dtn1", "dtn2", 20*units.Gbps); err != nil {
				t.Fatal(err)
			}
		}
		// Cross traffic: a constant 25 Gb/s unresponsive stream, so the
		// shared 40G link is oversubscribed by the 19G RoCE flow.
		d2.Bind(netsim.ProtoUDP, 9, netsim.HandlerFunc(func(*netsim.Packet) {}))
		blast := netsim.FlowKey{Src: "cross", Dst: "dtn2", SrcPort: 50000, DstPort: 9, Proto: netsim.ProtoUDP}
		interval := (25 * units.Gbps).Serialize(9000)
		n.Sched.Every(interval, func() {
			x.Send(&netsim.Packet{Flow: blast, Size: 9000})
		})

		var res *Result
		f := Transfer(d1, d2, 4791, units.GB, Options{Rate: 19 * units.Gbps}, func(r *Result) { res = r })
		n.RunFor(10 * time.Second)
		if res == nil {
			res = f.Result()
		}
		return float64(res.Throughput()) / 1e9
	}
	with := run(true)
	without := run(false)
	if with < 15 {
		t.Errorf("RoCE on circuit = %.2f Gbps, want near 19", with)
	}
	if without > with*0.5 {
		t.Errorf("RoCE without circuit = %.2f vs with = %.2f: expected collapse", without, with)
	}
}

func TestRequiresRate(t *testing.T) {
	n := netsim.New(1)
	d1 := n.NewHost("a")
	d2 := n.NewHost("b")
	n.Connect(d1, d2, netsim.LinkConfig{Rate: units.Gbps})
	n.ComputeRoutes()
	defer func() {
		if recover() == nil {
			t.Error("missing rate should panic")
		}
	}()
	Transfer(d1, d2, 1, units.MB, Options{}, nil)
}

func TestResultSnapshotInProgress(t *testing.T) {
	n := netsim.New(1)
	d1 := n.NewHost("a")
	d2 := n.NewHost("b")
	n.Connect(d1, d2, netsim.LinkConfig{Rate: units.Gbps, Delay: time.Millisecond})
	n.ComputeRoutes()
	f := Transfer(d1, d2, 1, 100*units.MB, Options{Rate: 900 * units.Mbps}, nil)
	n.RunFor(100 * time.Millisecond)
	r := f.Result()
	if r.Done {
		t.Error("should still be in progress")
	}
	if r.Duration() != 100*time.Millisecond {
		t.Errorf("duration = %v", r.Duration())
	}
	if r.CPUSeconds <= 0 || r.TCPCPUSeconds <= 0 {
		t.Error("CPU accounting missing")
	}
}
