// Package units provides the physical quantities used throughout the
// simulator: bit rates, byte sizes, and the conversions between them and
// time. Keeping these as distinct types prevents the classic
// bits-vs-bytes and decimal-vs-binary mistakes that plague network code.
//
// Conventions follow networking practice: link and transfer rates are
// decimal (1 Gbps = 1e9 bits/second), as are data sizes unless the binary
// constants (KiB, MiB, ...) are used explicitly.
package units

import (
	"fmt"
	"math"
	"time"
)

// saturateInt64 converts a non-negative float to int64, pinning values
// beyond the representable range to MaxInt64 — float-to-int conversions
// that overflow are undefined in Go and wrap to negative on amd64.
func saturateInt64(v float64) int64 {
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// BitRate is a data rate in bits per second.
type BitRate float64

// Decimal bit-rate constants, as used for link speeds.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e6 * BitPerSecond
	Gbps                 = 1e9 * BitPerSecond
	Tbps                 = 1e12 * BitPerSecond
)

// ByteSize is an amount of data in bytes.
type ByteSize int64

// Decimal and binary size constants.
const (
	Byte ByteSize = 1

	KB = 1e3 * Byte
	MB = 1e6 * Byte
	GB = 1e9 * Byte
	TB = 1e12 * Byte

	KiB = 1 << 10 * Byte
	MiB = 1 << 20 * Byte
	GiB = 1 << 30 * Byte
	TiB = 1 << 40 * Byte
)

// Serialize returns the time needed to clock n bytes onto a link running
// at rate r. A zero or negative rate returns zero (infinitely fast), which
// is used by abstract internal connections.
func (r BitRate) Serialize(n ByteSize) time.Duration {
	if r <= 0 || n <= 0 {
		return 0
	}
	sec := float64(n) * 8 / float64(r)
	return time.Duration(saturateInt64(sec * float64(time.Second)))
}

// BytesIn returns how many whole bytes rate r delivers in duration d.
func (r BitRate) BytesIn(d time.Duration) ByteSize {
	if r <= 0 || d <= 0 {
		return 0
	}
	return ByteSize(saturateInt64(float64(r) * d.Seconds() / 8))
}

// PacketsPerSecond returns the packet rate for back-to-back packets of the
// given size (including framing the caller chose to count) at rate r.
func (r BitRate) PacketsPerSecond(size ByteSize) float64 {
	if size <= 0 {
		return 0
	}
	return float64(r) / (float64(size) * 8)
}

// Rate returns the bit rate that moves n bytes in duration d.
func Rate(n ByteSize, d time.Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(float64(n) * 8 / d.Seconds())
}

// TimeToSend returns the time to move n bytes at rate r; an alias of
// Serialize that reads better when talking about whole transfers.
func TimeToSend(n ByteSize, r BitRate) time.Duration {
	return r.Serialize(n)
}

// BandwidthDelayProduct returns the number of bytes in flight on a path of
// the given rate and round-trip time — the window TCP needs to fill the
// pipe (the paper's Equation 2).
func BandwidthDelayProduct(r BitRate, rtt time.Duration) ByteSize {
	return r.BytesIn(rtt)
}

// String formats the rate with an appropriate decimal unit, e.g.
// "9.41 Gbps".
func (r BitRate) String() string {
	switch {
	case r >= Tbps:
		return fmt.Sprintf("%.2f Tbps", float64(r/Tbps))
	case r >= Gbps:
		return fmt.Sprintf("%.2f Gbps", float64(r/Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2f Mbps", float64(r/Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2f Kbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%.0f bps", float64(r))
	}
}

// String formats the size with an appropriate decimal unit, e.g.
// "239.5 GB".
func (s ByteSize) String() string {
	switch {
	case s >= TB || s <= -TB:
		return fmt.Sprintf("%.2f TB", float64(s)/float64(TB))
	case s >= GB || s <= -GB:
		return fmt.Sprintf("%.2f GB", float64(s)/float64(GB))
	case s >= MB || s <= -MB:
		return fmt.Sprintf("%.2f MB", float64(s)/float64(MB))
	case s >= KB || s <= -KB:
		return fmt.Sprintf("%.2f KB", float64(s)/float64(KB))
	default:
		return fmt.Sprintf("%d B", int64(s))
	}
}
