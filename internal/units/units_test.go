package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSerialize(t *testing.T) {
	tests := []struct {
		name string
		rate BitRate
		n    ByteSize
		want time.Duration
	}{
		{"1500B at 1Gbps", Gbps, 1500, 12 * time.Microsecond},
		{"9000B at 10Gbps", 10 * Gbps, 9000, 7200 * time.Nanosecond},
		{"1B at 8bps", 8, 1, time.Second},
		{"zero bytes", Gbps, 0, 0},
		{"zero rate", 0, 1500, 0},
		{"negative rate", -1, 1500, 0},
	}
	for _, tt := range tests {
		if got := tt.rate.Serialize(tt.n); got != tt.want {
			t.Errorf("%s: Serialize = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestBytesIn(t *testing.T) {
	if got := Gbps.BytesIn(time.Second); got != 125*MB {
		t.Errorf("1Gbps over 1s = %v, want 125MB", got)
	}
	if got := (10 * Gbps).BytesIn(10 * time.Millisecond); got != ByteSize(12_500_000) {
		t.Errorf("10Gbps over 10ms = %v, want 12.5MB", got)
	}
	if got := Gbps.BytesIn(-time.Second); got != 0 {
		t.Errorf("negative duration = %v, want 0", got)
	}
}

func TestPacketsPerSecond(t *testing.T) {
	// The paper's §2.1 cites 812,744 regular (1538-byte on-wire) frames
	// per second for a 10G line card at peak efficiency.
	pps := (10 * Gbps).PacketsPerSecond(1538)
	if math.Abs(pps-812744) > 1 {
		t.Errorf("10G 1538B pps = %.0f, want ~812744", pps)
	}
	if got := Gbps.PacketsPerSecond(0); got != 0 {
		t.Errorf("zero size pps = %v, want 0", got)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(125*MB, time.Second); got != Gbps {
		t.Errorf("Rate(125MB, 1s) = %v, want 1Gbps", got)
	}
	if got := Rate(MB, 0); got != 0 {
		t.Errorf("Rate with zero duration = %v, want 0", got)
	}
}

func TestBandwidthDelayProduct(t *testing.T) {
	// Paper Equation 2: 1 Gb/s at 10 ms RTT needs a 1.25 MB window.
	if got := BandwidthDelayProduct(Gbps, 10*time.Millisecond); got != ByteSize(1_250_000) {
		t.Errorf("BDP(1Gbps,10ms) = %v, want 1.25MB", got)
	}
}

func TestRoundTrip_RateSerialize(t *testing.T) {
	// Serializing n bytes at rate r then recomputing the rate returns r.
	f := func(nRaw uint32, rRaw uint16) bool {
		n := ByteSize(nRaw%1_000_000 + 1)
		r := BitRate(rRaw%1000+1) * Mbps
		d := r.Serialize(n)
		got := Rate(n, d)
		// Serialize truncates to whole nanoseconds, so allow the
		// corresponding relative error plus float slack.
		tol := 2/float64(d.Nanoseconds()) + 1e-6
		return math.Abs(float64(got-r))/float64(r) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitRateString(t *testing.T) {
	tests := []struct {
		r    BitRate
		want string
	}{
		{10 * Gbps, "10.00 Gbps"},
		{BitRate(1.5 * float64(Tbps)), "1.50 Tbps"},
		{200 * Mbps, "200.00 Mbps"},
		{64 * Kbps, "64.00 Kbps"},
		{512, "512 bps"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String(%v bps) = %q, want %q", float64(tt.r), got, tt.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		s    ByteSize
		want string
	}{
		{ByteSize(239.5 * float64(GB)), "239.50 GB"},
		{40 * TB, "40.00 TB"},
		{33 * GB, "33.00 GB"},
		{1500, "1.50 KB"},
		{512, "512 B"},
		{-2 * MB, "-2.00 MB"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int64(tt.s), got, tt.want)
		}
	}
}

func TestBinaryConstants(t *testing.T) {
	if KiB != 1024 || MiB != 1024*1024 || GiB != 1<<30 || TiB != 1<<40 {
		t.Error("binary constants wrong")
	}
	if KB != 1000 || MB != 1e6 || GB != 1e9 || TB != 1e12 {
		t.Error("decimal constants wrong")
	}
}
