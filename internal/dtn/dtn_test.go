package dtn

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// wanPair builds dtn1 -- border1 -- border2 -- dtn2 with the WAN delay
// between borders.
func wanPair(rate units.BitRate, oneWay time.Duration, mtu int) (*netsim.Network, *netsim.Host, *netsim.Host) {
	n := netsim.New(1)
	d1 := n.NewHost("dtn1")
	d2 := n.NewHost("dtn2")
	b1 := n.NewDevice("border1", netsim.DeviceConfig{EgressBuffer: 32 * units.MB})
	b2 := n.NewDevice("border2", netsim.DeviceConfig{EgressBuffer: 32 * units.MB})
	n.Connect(d1, b1, netsim.LinkConfig{Rate: rate, Delay: 10 * time.Microsecond, MTU: mtu})
	n.Connect(b1, b2, netsim.LinkConfig{Rate: rate, Delay: oneWay, MTU: mtu})
	n.Connect(b2, d2, netsim.LinkConfig{Rate: rate, Delay: 10 * time.Microsecond, MTU: mtu})
	n.ComputeRoutes()
	return n, d1, d2
}

func TestGridFTPParallelStreams(t *testing.T) {
	n, h1, h2 := wanPair(10*units.Gbps, 10*time.Millisecond, 9000)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	var res *Result
	GridFTP{Streams: 4}.Start(src, dst, 500*units.MB, func(r *Result) { res = r })
	n.RunFor(30 * time.Second)
	if res == nil || !res.Done {
		t.Fatal("transfer did not finish")
	}
	if res.Streams != 4 || len(res.PerStream) != 4 {
		t.Errorf("streams = %d/%d, want 4", res.Streams, len(res.PerStream))
	}
	var total units.ByteSize
	for _, st := range res.PerStream {
		total += st.BytesAcked
	}
	if total != 500*units.MB {
		t.Errorf("streams moved %v, want 500MB", total)
	}
	gbps := float64(res.Throughput()) / 1e9
	if gbps < 4 {
		t.Errorf("gridftp = %.2f Gbps on clean 10G, want > 4", gbps)
	}
}

func TestLegacyFTPTricklesAtWindowCap(t *testing.T) {
	// NOAA §6.3: FTP with stock buffers across a long path trickles at
	// single-digit MB/s regardless of link speed. NERSC<->Boulder is
	// ~25ms RTT: 64KiB/25ms ≈ 21 Mb/s ≈ 2.6 MB/s.
	n, h1, h2 := wanPair(10*units.Gbps, 12500*time.Microsecond, 1500)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	var res *Result
	LegacyFTP{}.Start(src, dst, 20*units.MB, func(r *Result) { res = r })
	n.RunFor(2 * time.Minute)
	if res == nil {
		t.Fatal("transfer did not finish")
	}
	mbPerSec := float64(res.Throughput()) / 8 / 1e6
	if mbPerSec > 3 {
		t.Errorf("legacy ftp = %.1f MB/s, want trickle (1-3 MB/s)", mbPerSec)
	}
	if mbPerSec < 0.5 {
		t.Errorf("legacy ftp = %.2f MB/s, implausibly low", mbPerSec)
	}
}

func TestDiskCapThrottles(t *testing.T) {
	n, h1, h2 := wanPair(10*units.Gbps, time.Millisecond, 9000)
	// Disk can only read at 2 Gb/s.
	src := New(h1, Disk{ReadRate: 2 * units.Gbps}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	var res *Result
	GridFTP{Streams: 4}.Start(src, dst, 250*units.MB, func(r *Result) { res = r })
	n.RunFor(30 * time.Second)
	if res == nil {
		t.Fatal("transfer did not finish")
	}
	gbps := float64(res.Throughput()) / 1e9
	if gbps > 2.2 {
		t.Errorf("disk-capped transfer = %.2f Gbps, want <= 2", gbps)
	}
	if gbps < 1.5 {
		t.Errorf("disk-capped transfer = %.2f Gbps, want near 2", gbps)
	}
}

func TestSCPCipherCapAndHPN(t *testing.T) {
	// Separate networks: a host runs either stock sshd or hpn-sshd on
	// port 22, never both.
	run := func(tool SCP) *Result {
		n, h1, h2 := wanPair(10*units.Gbps, 5*time.Millisecond, 1500)
		src := New(h1, Disk{}, tcp.Tuned())
		dst := New(h2, Disk{}, tcp.Tuned())
		var res *Result
		tool.Start(src, dst, 20*units.MB, func(r *Result) { res = r })
		n.RunFor(2 * time.Minute)
		return res
	}
	plain := run(SCP{})
	hpn := run(SCP{HPN: true})
	if plain == nil || hpn == nil {
		t.Fatal("transfers did not finish")
	}
	// Stock scp is window-capped (~52 Mb/s at 10ms); HPN unlocks it up
	// to the cipher rate.
	if float64(hpn.Throughput()) < 3*float64(plain.Throughput()) {
		t.Errorf("hpn-scp %.0f Mbps vs scp %.0f Mbps: want >= 3x",
			float64(hpn.Throughput())/1e6, float64(plain.Throughput())/1e6)
	}
	if float64(hpn.Throughput()) > 1.7e9 {
		t.Errorf("hpn-scp = %.2f Gbps, want cipher-capped ~1.6", float64(hpn.Throughput())/1e9)
	}
}

func TestPlanMatchesSimulationRegimes(t *testing.T) {
	n, h1, h2 := wanPair(10*units.Gbps, 12500*time.Microsecond, 1500)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())

	// Window-limited: legacy FTP.
	p := PlanTransfer(src, dst, 100*units.MB, LegacyFTP{})
	if p.Limit != "window" {
		t.Errorf("ftp plan limit = %q, want window", p.Limit)
	}
	if mb := float64(p.Rate) / 8 / 1e6; mb < 2 || mb > 3.5 {
		t.Errorf("ftp plan rate = %.1f MB/s, want ~2.6", mb)
	}

	// Path-limited: gridftp on clean path.
	p2 := PlanTransfer(src, dst, 100*units.MB, GridFTP{Streams: 4})
	if p2.Limit != "path" || p2.Rate != 10*units.Gbps {
		t.Errorf("gridftp plan = %+v, want path-limited at 10G", p2)
	}

	// Disk-limited.
	src.Disk.ReadRate = units.Gbps
	p3 := PlanTransfer(src, dst, 100*units.MB, GridFTP{})
	if p3.Limit != "disk" || p3.Rate != units.Gbps {
		t.Errorf("disk plan = %+v", p3)
	}
	if p3.Duration != 800*time.Millisecond {
		t.Errorf("plan duration = %v, want 800ms", p3.Duration)
	}
	_ = n
}

func TestTransferSetConcurrency(t *testing.T) {
	n, h1, h2 := wanPair(10*units.Gbps, time.Millisecond, 9000)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	ds := UniformDataset("test", 10, 10*units.MB)
	if ds.Total() != 100*units.MB {
		t.Fatalf("dataset total = %v", ds.Total())
	}
	var res *SetResult
	TransferSet(src, dst, ds, GridFTP{Streams: 2}, 3, func(r *SetResult) { res = r })
	n.RunFor(60 * time.Second)
	if res == nil || !res.Done {
		t.Fatal("set did not finish")
	}
	if res.Files != 10 || len(res.PerFile) != 10 {
		t.Errorf("files = %d/%d, want 10", res.Files, len(res.PerFile))
	}
	if res.Size != 100*units.MB {
		t.Errorf("size = %v", res.Size)
	}
	if res.Throughput() <= 0 || res.Duration() <= 0 {
		t.Error("aggregate stats missing")
	}
}

func TestTransferSetEmpty(t *testing.T) {
	n, h1, h2 := wanPair(units.Gbps, time.Millisecond, 1500)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	done := false
	TransferSet(src, dst, Dataset{Name: "empty"}, GridFTP{}, 4, func(*SetResult) { done = true })
	n.Run()
	if !done {
		t.Error("empty set should complete immediately")
	}
}

func TestResultSnapshotInProgress(t *testing.T) {
	n, h1, h2 := wanPair(units.Gbps, time.Millisecond, 1500)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	tr := GridFTP{}.Start(src, dst, 100*units.MB, nil)
	n.RunFor(50 * time.Millisecond)
	r := tr.Result()
	if r.Done {
		t.Error("should be in progress")
	}
	if r.Duration() != 50*time.Millisecond {
		t.Errorf("duration = %v", r.Duration())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestFDTDefaults(t *testing.T) {
	n, h1, h2 := wanPair(10*units.Gbps, time.Millisecond, 9000)
	src := New(h1, Disk{}, tcp.Tuned())
	dst := New(h2, Disk{}, tcp.Tuned())
	var res *Result
	FDT{}.Start(src, dst, 80*units.MB, func(r *Result) { res = r })
	n.RunFor(30 * time.Second)
	if res == nil || res.Streams != 8 || res.Tool != "fdt" {
		t.Fatalf("fdt result = %+v", res)
	}
}
