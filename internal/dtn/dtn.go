// Package dtn models Data Transfer Nodes — the dedicated-systems pattern
// of the Science DMZ (§3.2) — and the transfer tools that run on them.
//
// A Node couples a simulated host with a storage subsystem and a TCP
// tuning profile (the ESnet DTN tuning guide distilled to its effective
// parameters). Transfer tools capture the application layer:
//
//   - GridFTP: parallel TCP streams, tuned endpoints — the purpose-built
//     tool of a properly deployed DTN.
//   - FDT: stream-oriented parallel mover, equivalent at this fidelity.
//   - LegacyFTP: single stream with stock 64 KB buffers and no window
//     scaling — the "FTP server behind the firewall" whose transfers
//     trickled in at 1-2 MB/s in the NOAA case (§6.3).
//   - SCP: single stream whose throughput is capped by the SSH
//     application-layer window and cipher speed; the HPN patches the
//     paper cites remove the window cap.
//
// Plan gives the closed-form expectation for a transfer (bottleneck,
// window limit, disk limit) so experiments can compare simulation
// against the analytic model.
package dtn

import (
	"fmt"
	"time"

	"repro/internal/analytic"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// DefaultDataPort is the GridFTP data channel port.
const DefaultDataPort uint16 = 2811

// Disk describes a node's storage subsystem. Zero rates mean "not the
// bottleneck" (e.g., a parallel filesystem faster than the NIC).
type Disk struct {
	ReadRate  units.BitRate
	WriteRate units.BitRate
}

// Node is a data transfer node: host + storage + TCP tuning profile.
type Node struct {
	Host   *netsim.Host
	Disk   Disk
	Tuning tcp.Options

	servers map[uint16]*tcp.Server
}

// New creates a DTN on the host. Tuning applies to both the sending and
// receiving sides of transfers this node participates in.
func New(h *netsim.Host, disk Disk, tuning tcp.Options) *Node {
	return &Node{Host: h, Disk: disk, Tuning: tuning, servers: make(map[uint16]*tcp.Server)}
}

// server lazily starts the node's receiving server on a port. A port's
// server keeps the options of the first transfer that used it — a host
// runs one daemon per port.
func (n *Node) server(port uint16, opts tcp.Options) *tcp.Server {
	if s, ok := n.servers[port]; ok {
		return s
	}
	s := tcp.NewServer(n.Host, port, opts)
	n.servers[port] = s
	return s
}

// Result summarizes one transfer.
type Result struct {
	Tool       string
	Size       units.ByteSize
	Streams    int
	Start, End sim.Time
	Done       bool
	PerStream  []*tcp.Stats
}

// Duration returns wall time from start to the last stream finishing.
func (r *Result) Duration() time.Duration { return r.End.Sub(r.Start) }

// Throughput returns aggregate goodput.
func (r *Result) Throughput() units.BitRate {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return units.Rate(r.Size, d)
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: %v in %v = %v (%d streams)",
		r.Tool, r.Size, r.Duration(), r.Throughput(), r.Streams)
}

// Tool is a transfer application running on DTNs.
type Tool interface {
	// ToolName identifies the tool in results.
	ToolName() string
	// Start begins moving size bytes from src to dst, invoking onDone
	// (which may be nil) when the last byte is acknowledged.
	Start(src, dst *Node, size units.ByteSize, onDone func(*Result)) *Transfer
}

// Transfer is an in-progress transfer.
type Transfer struct {
	res       Result
	remaining int
	host      *netsim.Host // source host; its clock stamps the result
	onDone    func(*Result)
}

// Result returns a snapshot (End = now while in progress).
func (t *Transfer) Result() *Result {
	r := t.res
	if !r.Done {
		r.End = t.host.Now()
	}
	return &r
}

// diskCap returns the storage-imposed rate ceiling for a transfer
// between two nodes, or 0 for unlimited.
func diskCap(src, dst *Node) units.BitRate {
	cap := src.Disk.ReadRate
	if w := dst.Disk.WriteRate; w > 0 && (cap == 0 || w < cap) {
		cap = w
	}
	return cap
}

// startStreams launches n parallel TCP streams moving size bytes total,
// with the given endpoint options (pacing already applied).
func startStreams(tool string, src, dst *Node, port uint16, size units.ByteSize,
	n int, sndOpts, rcvOpts tcp.Options, onDone func(*Result)) *Transfer {

	if n < 1 {
		n = 1
	}
	srv := dst.server(port, rcvOpts)
	tr := &Transfer{
		res: Result{
			Tool:    tool,
			Size:    size,
			Streams: n,
			Start:   src.Host.Now(),
		},
		remaining: n,
		host:      src.Host,
		onDone:    onDone,
	}
	per := size / units.ByteSize(n)
	for i := 0; i < n; i++ {
		chunk := per
		if i == n-1 {
			chunk = size - per*units.ByteSize(n-1)
		}
		tcp.Dial(src.Host, srv, chunk, sndOpts, func(st *tcp.Stats) {
			tr.res.PerStream = append(tr.res.PerStream, st)
			tr.remaining--
			if tr.remaining == 0 {
				tr.res.Done = true
				tr.res.End = tr.host.Now()
				if tr.onDone != nil {
					r := tr.res
					tr.onDone(&r)
				}
			}
		})
	}
	return tr
}

// GridFTP is the parallel-stream mover of a properly built DTN.
type GridFTP struct {
	// Streams is the parallelism (-p); zero defaults to 4.
	Streams int
	// Port overrides the data port; zero uses DefaultDataPort.
	Port uint16
}

// ToolName implements Tool.
func (g GridFTP) ToolName() string { return "gridftp" }

// Start implements Tool.
func (g GridFTP) Start(src, dst *Node, size units.ByteSize, onDone func(*Result)) *Transfer {
	streams := g.Streams
	if streams == 0 {
		streams = 4
	}
	port := g.Port
	if port == 0 {
		port = DefaultDataPort
	}
	snd := src.Tuning
	if cap := diskCap(src, dst); cap > 0 {
		snd.PaceRate = cap / units.BitRate(streams)
	}
	return startStreams(g.ToolName(), src, dst, port, size, streams, snd, dst.Tuning, onDone)
}

// FDT is the Fast Data Transfer tool; at this fidelity it behaves like
// GridFTP with its own default parallelism.
type FDT struct {
	Streams int
	Port    uint16
}

// ToolName implements Tool.
func (f FDT) ToolName() string { return "fdt" }

// Start implements Tool.
func (f FDT) Start(src, dst *Node, size units.ByteSize, onDone func(*Result)) *Transfer {
	streams := f.Streams
	if streams == 0 {
		streams = 8
	}
	port := f.Port
	if port == 0 {
		port = 54321
	}
	snd := src.Tuning
	if cap := diskCap(src, dst); cap > 0 {
		snd.PaceRate = cap / units.BitRate(streams)
	}
	return startStreams(f.ToolName(), src, dst, port, size, streams, snd, dst.Tuning, onDone)
}

// LegacyFTP is a stock single-stream FTP server: 64 KB buffers, no
// window scaling, regardless of how well the hosts beneath are tuned.
type LegacyFTP struct{}

// ToolName implements Tool.
func (LegacyFTP) ToolName() string { return "ftp" }

// Start implements Tool.
func (LegacyFTP) Start(src, dst *Node, size units.ByteSize, onDone func(*Result)) *Transfer {
	opts := tcp.Legacy()
	if cap := diskCap(src, dst); cap > 0 {
		opts.PaceRate = cap
	}
	return startStreams(LegacyFTP{}.ToolName(), src, dst, 21, size, 1, opts, tcp.Legacy(), onDone)
}

// SCP is single-stream SSH copy. The stock SSH application window caps
// effective throughput like an unscaled TCP window; the HPN-SSH patches
// the paper cites (§3.2) remove that cap, leaving the cipher as the
// remaining application limit.
type SCP struct {
	// HPN applies the high-performance patches.
	HPN bool
	// CipherRate caps throughput by encryption speed; zero defaults to
	// 1.6 Gb/s (AES on one core of the era).
	CipherRate units.BitRate
}

// ToolName implements Tool.
func (s SCP) ToolName() string {
	if s.HPN {
		return "hpn-scp"
	}
	return "scp"
}

// Start implements Tool.
func (s SCP) Start(src, dst *Node, size units.ByteSize, onDone func(*Result)) *Transfer {
	cipher := s.CipherRate
	if cipher == 0 {
		cipher = 1600 * units.Mbps
	}
	var snd, rcv tcp.Options
	if s.HPN {
		snd, rcv = src.Tuning, dst.Tuning
	} else {
		snd, rcv = tcp.Legacy(), tcp.Legacy()
	}
	snd.PaceRate = cipher
	if cap := diskCap(src, dst); cap > 0 && cap < snd.PaceRate {
		snd.PaceRate = cap
	}
	return startStreams(s.ToolName(), src, dst, 22, size, 1, snd, rcv, onDone)
}

// Plan is the analytic expectation for a transfer: which limit binds and
// the resulting rate and duration.
type Plan struct {
	Size       units.ByteSize
	Bottleneck units.BitRate // path bottleneck link
	WindowCap  units.BitRate // window/RTT ceiling (0 = unlimited)
	DiskCap    units.BitRate // storage ceiling (0 = unlimited)
	Rate       units.BitRate // min of the above
	Duration   time.Duration
	Limit      string // "path", "window", or "disk"
}

// PlanTransfer computes the closed-form expectation for moving size
// bytes from src to dst with the given tool.
func PlanTransfer(src, dst *Node, size units.ByteSize, tool Tool) Plan {
	net := src.Host.Network()
	p := Plan{
		Size:       size,
		Bottleneck: net.PathBottleneck(src.Host.Name(), dst.Host.Name()),
		DiskCap:    diskCap(src, dst),
	}
	rtt := net.PathRTT(src.Host.Name(), dst.Host.Name())

	// Window ceiling: per-stream window times stream count over RTT.
	streams := 1
	window := units.ByteSize(0)
	switch tl := tool.(type) {
	case GridFTP:
		streams = tl.Streams
		if streams == 0 {
			streams = 4
		}
	case FDT:
		streams = tl.Streams
		if streams == 0 {
			streams = 8
		}
	case LegacyFTP:
		window = 64 * units.KiB
	case SCP:
		if !tl.HPN {
			window = 64 * units.KiB
		}
		cipher := tl.CipherRate
		if cipher == 0 {
			cipher = 1600 * units.Mbps
		}
		if p.DiskCap == 0 || cipher < p.DiskCap {
			p.DiskCap = cipher
		}
	}
	if window > 0 && rtt > 0 {
		p.WindowCap = units.BitRate(streams) * analytic.WindowLimitedRate(window, rtt)
	}

	p.Rate, p.Limit = p.Bottleneck, "path"
	if p.WindowCap > 0 && p.WindowCap < p.Rate {
		p.Rate, p.Limit = p.WindowCap, "window"
	}
	if p.DiskCap > 0 && p.DiskCap < p.Rate {
		p.Rate, p.Limit = p.DiskCap, "disk"
	}
	if p.Rate > 0 {
		p.Duration = p.Rate.Serialize(size)
	}
	return p
}

// Dataset is a collection of file sizes to move as one job (e.g., the
// NOAA reforecast: 273 files totalling 239.5 GB).
type Dataset struct {
	Name  string
	Files []units.ByteSize
}

// Total returns the dataset size.
func (d Dataset) Total() units.ByteSize {
	var sum units.ByteSize
	for _, f := range d.Files {
		sum += f
	}
	return sum
}

// UniformDataset builds n equal files of the given size.
func UniformDataset(name string, n int, each units.ByteSize) Dataset {
	d := Dataset{Name: name}
	for i := 0; i < n; i++ {
		d.Files = append(d.Files, each)
	}
	return d
}

// SetResult aggregates a dataset job.
type SetResult struct {
	Dataset    string
	Files      int
	Size       units.ByteSize
	Start, End sim.Time
	Done       bool
	PerFile    []*Result
}

// Duration returns the job wall time.
func (r *SetResult) Duration() time.Duration { return r.End.Sub(r.Start) }

// Throughput returns the job-level rate.
func (r *SetResult) Throughput() units.BitRate {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return units.Rate(r.Size, d)
}

// TransferSet moves a dataset with up to concurrency files in flight,
// like a Globus Online job (§6.3). onDone fires when the last file
// completes.
func TransferSet(src, dst *Node, d Dataset, tool Tool, concurrency int, onDone func(*SetResult)) *SetResult {
	if concurrency < 1 {
		concurrency = 1
	}
	res := &SetResult{
		Dataset: d.Name,
		Files:   len(d.Files),
		Size:    d.Total(),
		Start:   src.Host.Now(),
	}
	next := 0
	inFlight := 0
	var launch func()
	var fileDone func(*Result)
	fileDone = func(r *Result) {
		res.PerFile = append(res.PerFile, r)
		inFlight--
		if next < len(d.Files) {
			launch()
			return
		}
		if inFlight == 0 {
			res.Done = true
			res.End = src.Host.Now()
			if onDone != nil {
				onDone(res)
			}
		}
	}
	launch = func() {
		size := d.Files[next]
		next++
		inFlight++
		tool.Start(src, dst, size, fileDone)
	}
	for next < len(d.Files) && inFlight < concurrency {
		launch()
	}
	if len(d.Files) == 0 {
		res.Done = true
		res.End = src.Host.Now()
		if onDone != nil {
			onDone(res)
		}
	}
	return res
}
