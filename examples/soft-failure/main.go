// Soft failure (§2.1): a line card starts dropping roughly one packet
// in 22,000 — far too little for SNMP error counters, but enough to
// collapse TCP throughput over a 16 ms RTT path. This example injects
// exactly that fault into a four-site measurement mesh and shows the
// paper's core argument about test-and-measurement cadence: the same
// fault that hides for months without regular testing is caught in
// about one test period once scheduled BWCTL runs are in place, and
// on-demand OWAMP probing then localizes it to the guilty link.
//
// Run with: go run ./examples/soft-failure
package main

import (
	_ "embed"
	"fmt"
	"os"
	"time"

	"repro/internal/fault"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	sc, err := fault.ParseScenario(scenarioJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f := sc.Faults[0]
	fmt.Printf("Scenario %q: %d-site mesh at %g Mbps.\n", sc.Name, sc.Topology.Sites, sc.Topology.RateMbps)
	fmt.Printf("At t=%s the %s link starts dropping 1 packet in %d; the optic\n",
		f.Onset, f.Link, f.Loss.N)
	fmt.Println("reports clean SNMP counters throughout. How fast the NOC notices is")
	fmt.Println("purely a function of how often it tests:")
	fmt.Println()

	res, err := fault.RunCampaign(fault.CampaignConfig{
		Base: sc,
		Periods: []time.Duration{
			120 * time.Second, 60 * time.Second, 30 * time.Second, 15 * time.Second,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res.Render())

	// The example doubles as a regression check: the paper's claim only
	// reproduces if every cadence detects, localizes, and recovers, and
	// detection time shrinks monotonically with the test period.
	prev := time.Duration(-1)
	for _, row := range res.Rows {
		v := row.Verdict
		if !v.Detected || !v.Recovered {
			fmt.Fprintf(os.Stderr, "period %v: fault not caught (detected=%v recovered=%v)\n",
				row.Period, v.Detected, v.Recovered)
			os.Exit(1)
		}
		if !v.Localized {
			fmt.Fprintf(os.Stderr, "period %v: localization picked %q, want the injected link\n",
				row.Period, v.TopSuspect)
			os.Exit(1)
		}
		if prev >= 0 && v.MTTD >= prev {
			fmt.Fprintf(os.Stderr, "MTTD did not shrink with cadence: %v then %v\n", prev, v.MTTD)
			os.Exit(1)
		}
		prev = v.MTTD
	}

	fmt.Println("Every cadence caught the fault and OWAMP probing pinned it to the")
	fmt.Printf("injected link; detection time fell from %v to %v as the test\n",
		res.Rows[0].Verdict.MTTD.Round(time.Second), res.Rows[len(res.Rows)-1].Verdict.MTTD.Round(time.Second))
	fmt.Println("period shortened. Without scheduled testing the paper reports this")
	fmt.Println("class of failure surviving for months.")
}
