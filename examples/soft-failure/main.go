// Soft failure (§2.1): a line card starts dropping roughly one packet
// in 22,000 — far too little for SNMP error counters, but enough to
// collapse TCP throughput over a 16 ms RTT path. This example injects
// exactly that fault into a four-site measurement mesh and shows the
// paper's core argument about test-and-measurement cadence: the same
// fault that hides for months without regular testing is caught in
// about one test period once scheduled BWCTL runs are in place, and
// on-demand OWAMP probing then localizes it to the guilty link.
//
// Run with: go run ./examples/soft-failure
package main

import (
	_ "embed"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/shard"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	traceSpans := flag.Bool("trace-spans", false,
		"run one instrumented scenario with a reference transfer during the fault and print its critical-path analysis")
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)
	sc, err := fault.ParseScenario(scenarioJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceSpans {
		runTraceSpans(sc)
		return
	}
	f := sc.Faults[0]
	fmt.Printf("Scenario %q: %d-site mesh at %g Mbps.\n", sc.Name, sc.Topology.Sites, sc.Topology.RateMbps)
	fmt.Printf("At t=%s the %s link starts dropping 1 packet in %d; the optic\n",
		f.Onset, f.Link, f.Loss.N)
	fmt.Println("reports clean SNMP counters throughout. How fast the NOC notices is")
	fmt.Println("purely a function of how often it tests:")
	fmt.Println()

	res, err := fault.RunCampaign(fault.CampaignConfig{
		Base: sc,
		Periods: []time.Duration{
			120 * time.Second, 60 * time.Second, 30 * time.Second, 15 * time.Second,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res.Render())

	// The example doubles as a regression check: the paper's claim only
	// reproduces if every cadence detects, localizes, and recovers, and
	// detection time shrinks monotonically with the test period.
	prev := time.Duration(-1)
	for _, row := range res.Rows {
		v := row.Verdict
		if !v.Detected || !v.Recovered {
			fmt.Fprintf(os.Stderr, "period %v: fault not caught (detected=%v recovered=%v)\n",
				row.Period, v.Detected, v.Recovered)
			os.Exit(1)
		}
		if !v.Localized {
			fmt.Fprintf(os.Stderr, "period %v: localization picked %q, want the injected link\n",
				row.Period, v.TopSuspect)
			os.Exit(1)
		}
		if prev >= 0 && v.MTTD >= prev {
			fmt.Fprintf(os.Stderr, "MTTD did not shrink with cadence: %v then %v\n", prev, v.MTTD)
			os.Exit(1)
		}
		prev = v.MTTD
	}

	fmt.Println("Every cadence caught the fault and OWAMP probing pinned it to the")
	fmt.Printf("injected link; detection time fell from %v to %v as the test\n",
		res.Rows[0].Verdict.MTTD.Round(time.Second), res.Rows[len(res.Rows)-1].Verdict.MTTD.Round(time.Second))
	fmt.Println("period shortened. Without scheduled testing the paper reports this")
	fmt.Println("class of failure surviving for months.")
}

// Reference-transfer parameters for -trace-spans: a 2 GB "science
// data" transfer launched while the fault is active, so the span layer
// has a degraded elephant flow to explain. The size matters: it has to
// run long enough that the loss-driven steady state dominates and the
// startup transient (handshake, slow-start ramp) amortizes to noise.
const (
	refSize  = 2 * units.GB
	refStart = 150 * time.Second // fault onset 2m4s, clear 5m4s
	refPort  = 5001              // BWCTL owns 5201
)

// runTraceSpans runs the scenario once with span collection attached,
// launches the reference transfer during the fault window, and prints
// the critical-path analysis of why it was slow. It exits nonzero
// unless the analysis attributes at least 90% of the transfer's excess
// duration to the injected fault's signature buckets (recovery and
// cwnd-limited) — the span layer's own regression check.
func runTraceSpans(sc *fault.Scenario) {
	tele := telemetry.New()
	col := trace.NewCollector()
	col.Attach(tele.Bus)
	n := netsim.New(harness.Seed("fault", sc.Name, "net"))
	n.AttachTelemetry(tele)

	var refStats *tcp.Stats
	ready := func(n *netsim.Network) {
		src := n.Node("site1").(*netsim.Host)
		dst := n.Node("site2").(*netsim.Host)
		srv := tcp.NewServer(dst, refPort, tcp.Tuned())
		n.Sched.After(refStart, func() {
			tcp.Dial(src, srv, refSize, tcp.Tuned(), func(st *tcp.Stats) { refStats = st })
		})
	}
	if _, err := fault.ExecuteWith(n, sc, nil, ready); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if refStats == nil || !refStats.Done {
		fmt.Fprintln(os.Stderr, "reference transfer did not complete inside the scenario")
		os.Exit(1)
	}

	var ref *trace.FlowTrace
	for _, ft := range col.Flows() {
		if strings.HasSuffix(ft.Flow, fmt.Sprintf(">site2:%d", refPort)) {
			ref = ft
		}
	}
	if ref == nil {
		fmt.Fprintln(os.Stderr, "no span tree assembled for the reference transfer")
		os.Exit(1)
	}

	f := sc.Faults[0]
	fmt.Printf("Reference transfer: %v site1>site2 starting at t=%v, inside the\n", refSize, refStart)
	fmt.Printf("%s fault window (1 packet in %d dropped on %s).\n\n", f.Type, f.Loss.N, f.Link)
	// Baseline 0 self-calibrates from the transfer's own best sustained
	// interval: what the path demonstrably delivers between loss events,
	// with framing overhead already paid. Against the raw line rate every
	// bucket would carry a few percent of header-tax "excess".
	rep := trace.Analyze(ref, 0, col.Faults())
	rep.Render(os.Stdout)

	share := rep.ExcessShare(telemetry.PhaseRecovery, telemetry.PhaseCwndLimited)
	fmt.Printf("\n%.1f%% of the transfer's excess time is attributed to the fault's\n", 100*share)
	fmt.Println("signature (loss recovery + the collapsed congestion window it leaves).")
	if share < 0.9 {
		fmt.Fprintf(os.Stderr, "critical path attribution too weak: %.1f%% < 90%%\n", 100*share)
		os.Exit(1)
	}
}
