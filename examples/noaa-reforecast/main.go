// NOAA reforecast repatriation: the §6.3 use case end to end.
//
// The Earth System Research Lab computed a 1984-2012 reforecast at NERSC
// (800 TB on HPSS) and needed ~170 TB back in Boulder. Through the NOAA
// firewall, FTP trickled at 1-2 MB/s; with a Science DMZ DTN running a
// Globus-style parallel mover, the measured batch hit ~395 MB/s — 273
// files totalling 239.5 GB in just over 10 minutes.
//
// This example plans the transfer analytically, simulates both paths,
// and extrapolates the full repatriation.
//
// Run with: go run ./examples/noaa-reforecast
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/dtn"
	"repro/internal/flowgen"
	"repro/internal/shard"
	"repro/internal/topo"
	"repro/internal/units"
)

func main() {
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)

	dataset := flowgen.NOAAReforecast()
	fmt.Printf("dataset: %d files, %v total\n\n", len(dataset.Files), dataset.Total())

	// The before picture: an FTP server behind the NOAA firewall.
	wan := topo.WANConfig{Rate: 10 * units.Gbps, Delay: 12500 * time.Microsecond, MTU: 1500}
	campus := topo.NewCampus(1, topo.CampusConfig{WAN: wan})

	plan := dtn.PlanTransfer(campus.RemoteDTN, campus.ScienceHost, dataset.Total(), dtn.LegacyFTP{})
	fmt.Printf("FTP plan: %v (%s-limited at %v) — the 'trickle'\n",
		round(plan.Duration), plan.Limit, plan.Rate)

	var ftp *dtn.Result
	dtn.LegacyFTP{}.Start(campus.RemoteDTN, campus.ScienceHost, 20*units.MB, func(r *dtn.Result) { ftp = r })
	campus.Net.RunFor(3 * time.Minute)
	fmt.Printf("FTP measured: %v (%.1f MB/s)\n\n", ftp.Throughput(), float64(ftp.Throughput())/8e6)

	// The after picture: Science DMZ DTN with storage provisioned at
	// ~400 MB/s, Globus-style parallel streams.
	dmz := topo.NewSimpleDMZ(2, topo.SimpleDMZConfig{
		WAN:     wan,
		DTNDisk: dtn.Disk{ReadRate: 3200 * units.Mbps, WriteRate: 3200 * units.Mbps},
	})
	plan2 := dtn.PlanTransfer(dmz.RemoteDTN, dmz.DTN, dataset.Total(), dtn.GridFTP{Streams: 4})
	fmt.Printf("DTN plan: %v (%s-limited at %v)\n", round(plan2.Duration), plan2.Limit, plan2.Rate)

	// Simulate a scaled slice of the dataset (12 files) to measure the
	// achieved rate, then extrapolate the full job.
	slice := dtn.Dataset{Name: "noaa-slice", Files: dataset.Files[:12]}
	var res *dtn.SetResult
	dtn.TransferSet(dmz.RemoteDTN, dmz.DTN, slice, dtn.GridFTP{Streams: 4}, 2,
		func(r *dtn.SetResult) { res = r })
	dmz.Net.RunFor(3 * time.Minute)
	fmt.Printf("DTN measured (12-file slice): %v (%.0f MB/s)\n",
		res.Throughput(), float64(res.Throughput())/8e6)

	full := res.Throughput().Serialize(dataset.Total())
	repatriation := res.Throughput().Serialize(170 * units.TB)
	fmt.Printf("\n%v batch at that rate: %v (paper: ~10 minutes)\n", dataset.Total(), round(full))
	fmt.Printf("full 170 TB repatriation: %.1f days\n", repatriation.Hours()/24)
	fmt.Printf("speedup over FTP: %.0fx (paper: ~200x)\n",
		float64(res.Throughput())/float64(ftp.Throughput()))
}

func round(d time.Duration) time.Duration { return d.Round(time.Second) }
