// Campus upgrade: the §6.1 University of Colorado story end to end.
//
// The physics group's 1G hosts feed a cut-through aggregation switch
// whose store-and-forward fallback has inadequate buffers. As the group
// grows, per-host throughput collapses; perfSONAR's regular testing
// alerts, the switch is replaced, and performance returns to fair-share
// line rate.
//
// Run with: go run ./examples/campus-upgrade
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/perfsonar"
	"repro/internal/shard"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

func measure(c *topo.Colorado) (perHost units.BitRate, alerts int) {
	// perfSONAR: regular throughput tests from the 1G measurement host.
	// The floor is set below what a short test achieves on a healthy
	// path (a 2 s test at WAN RTT spends much of its life in slow
	// start), but far above what the degraded switch lets through.
	mesh := perfsonar.NewMesh(c.Perf1G, c.RemoteTier2.Host)
	alerter := &perfsonar.Alerter{ThroughputFloor: 250 * units.Mbps}
	alerter.Watch(mesh.Archive)
	mesh.StartBWCTL(4*time.Second, 2*time.Second, tcp.Tuned())

	// The physics cluster pushes data to the remote Tier-2.
	srv := tcp.NewServer(c.RemoteTier2.Host, 2811, c.RemoteTier2.Tuning)
	var conns []*tcp.Conn
	for _, ph := range c.Physics {
		conns = append(conns, tcp.Dial(ph.Host, srv, -1, ph.Tuning, nil))
	}
	c.Net.RunFor(8 * time.Second)

	var sum units.BitRate
	for _, conn := range conns {
		sum += conn.Stats().Throughput()
	}
	return sum / units.BitRate(len(conns)), len(alerter.Alerts)
}

func main() {
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)

	fmt.Println("== before: cut-through switch with inadequate SF buffers ==")
	before := topo.NewColorado(1, topo.ColoradoConfig{})
	rate, alerts := measure(before)
	fmt.Printf("per-host throughput: %v across %d hosts\n", rate, len(before.Physics))
	fmt.Printf("switch degraded to store-and-forward: %v\n", before.PhysicsAgg.Degraded)
	fmt.Printf("store-and-forward pool drops: %d; perfSONAR alerts: %d\n\n",
		before.PhysicsAgg.SFDrops, alerts)

	fmt.Println("== after: replacement hardware with adequate buffers ==")
	after := topo.NewColorado(1, topo.ColoradoConfig{FixedSwitch: true})
	rate2, alerts2 := measure(after)
	fmt.Printf("per-host throughput: %v of the 1G host NICs\n", rate2)
	fmt.Printf("switch degraded: %v; perfSONAR alerts: %d\n", after.PhysicsAgg.Degraded, alerts2)
	fmt.Printf("\nrecovery: %.1fx per host — 'near line rate for each member' (§6.1)\n",
		float64(rate2)/float64(rate))
}
