// Campus upgrade: the §6.1 University of Colorado story end to end.
//
// The physics group's 1G hosts feed a cut-through aggregation switch
// whose store-and-forward fallback has inadequate buffers. As the group
// grows, per-host throughput collapses; perfSONAR's regular testing
// alerts, the switch is replaced, and performance returns to fair-share
// line rate.
//
// Run with: go run ./examples/campus-upgrade
//
// With -background-flows N (try 100000), N enterprise mice ride the
// hybrid fluid engine from campus hosts behind the firewall to the same
// remote site, sharing the border WAN link with the science flows. The
// background is analytic — its cost is one engine tick regardless of N
// — while the physics transfers stay packet-accurate. Output is
// byte-identical at any -shards value.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/flowgen"
	"repro/internal/fluid"
	"repro/internal/perfsonar"
	"repro/internal/shard"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

func measure(c *topo.Colorado, bgFlows int) (perHost units.BitRate, alerts int, aggs []*fluid.Aggregate) {
	// perfSONAR: regular throughput tests from the 1G measurement host.
	// The floor is set below what a short test achieves on a healthy
	// path (a 2 s test at WAN RTT spends much of its life in slow
	// start), but far above what the degraded switch lets through.
	mesh := perfsonar.NewMesh(c.Perf1G, c.RemoteTier2.Host)
	alerter := &perfsonar.Alerter{ThroughputFloor: 250 * units.Mbps}
	alerter.Watch(mesh.Archive)
	mesh.StartBWCTL(4*time.Second, 2*time.Second, tcp.Tuned())

	// Enterprise background: N mice over the 8 s run, fluid-modeled,
	// entering at the campus hosts behind the firewall.
	if bgFlows > 0 {
		eng := fluid.New(c.Net, fluid.Config{PacketFlows: float64(len(c.Physics))})
		var err error
		aggs, err = flowgen.StartBusinessFluid(eng, c.RemoteTier2.Host, c.CampusHosts, flowgen.BusinessFluid{
			Name:           "business",
			FlowsPerSecond: float64(bgFlows) / 8,
			MeanSize:       25 * units.KB, // web/mail-sized mice
			Flows:          bgFlows / 25,
		})
		if err != nil {
			panic(err)
		}
		eng.Start()
	}

	// The physics cluster pushes data to the remote Tier-2.
	srv := tcp.NewServer(c.RemoteTier2.Host, 2811, c.RemoteTier2.Tuning)
	var conns []*tcp.Conn
	for _, ph := range c.Physics {
		conns = append(conns, tcp.Dial(ph.Host, srv, -1, ph.Tuning, nil))
	}
	c.Net.RunFor(8 * time.Second)

	var sum units.BitRate
	for _, conn := range conns {
		sum += conn.Stats().Throughput()
	}
	return sum / units.BitRate(len(conns)), len(alerter.Alerts), aggs
}

func main() {
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	bgFlows := flag.Int("background-flows", 0, "enterprise background mice over the run, advanced by the hybrid fluid engine (0 = none; try 100000)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)

	cfg := topo.ColoradoConfig{}
	if *bgFlows > 0 {
		cfg.CampusHosts = 8
	}

	fmt.Println("== before: cut-through switch with inadequate SF buffers ==")
	before := topo.NewColorado(1, cfg)
	rate, alerts, _ := measure(before, *bgFlows)
	fmt.Printf("per-host throughput: %v across %d hosts\n", rate, len(before.Physics))
	fmt.Printf("switch degraded to store-and-forward: %v\n", before.PhysicsAgg.Degraded)
	fmt.Printf("store-and-forward pool drops: %d; perfSONAR alerts: %d\n\n",
		before.PhysicsAgg.SFDrops, alerts)

	fmt.Println("== after: replacement hardware with adequate buffers ==")
	fixed := cfg
	fixed.FixedSwitch = true
	after := topo.NewColorado(1, fixed)
	rate2, alerts2, aggs := measure(after, *bgFlows)
	fmt.Printf("per-host throughput: %v of the 1G host NICs\n", rate2)
	fmt.Printf("switch degraded: %v; perfSONAR alerts: %d\n", after.PhysicsAgg.Degraded, alerts2)
	fmt.Printf("\nrecovery: %.1fx per host — 'near line rate for each member' (§6.1)\n",
		float64(rate2)/float64(rate))

	if *bgFlows > 0 {
		off, del := flowgen.FluidOffered(aggs), flowgen.FluidDelivered(aggs)
		loss := 0.0
		if off > 0 {
			loss = 1 - float64(del)/float64(off)
		}
		fmt.Printf("\n== hybrid background (fluid ledger, post-fix run) ==\n")
		fmt.Printf("flows: %d across %d campus hosts (behind the firewall)\n", *bgFlows, len(after.CampusHosts))
		fmt.Printf("offered: %v  delivered: %v  loss: %.3f\n", off, del, loss)
		if errs := after.Net.AuditInvariants(); len(errs) != 0 {
			fmt.Printf("AUDIT FAILED: %v\n", errs)
		} else {
			fmt.Println("conservation audit: clean (packet + fluid byte columns balance)")
		}
	}
}
