// Quickstart: build the paper's Figure 3 "simple Science DMZ", audit it
// against the four sub-patterns, and move data — first the wrong way
// (through the campus firewall to an untuned host), then the right way
// (to the DTN on the DMZ).
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dtn"
	"repro/internal/perfsonar"
	"repro/internal/shard"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

func main() {
	// 1. Build the Figure 3 topology: border router, DMZ switch with a
	//    DTN and a perfSONAR host, campus behind a firewall. The WAN is
	//    10G at ~25ms RTT.
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)

	d := topo.NewSimpleDMZ(1, topo.SimpleDMZConfig{})

	// 2. Audit it: the deployment satisfies all four patterns.
	dep := core.Deployment{
		Net: d.Net, Border: d.Border, DMZSwitch: d.DMZSwitch,
		DTNs:     []*dtn.Node{d.DTN},
		Monitors: []*perfsonar.Toolkit{perfsonar.NewToolkit(d.PerfSONAR, perfsonar.NewArchive())},
		WANHosts: []string{"remote-dtn"},
	}
	fmt.Print(core.Audit(dep))

	pr := core.DescribePath(dep, "remote-dtn", d.DTN)
	fmt.Printf("science path: %v (bottleneck %v, RTT %v, BDP %v)\n\n",
		pr.Hops, pr.Bottleneck, pr.RTT, pr.BDP)

	// 3. The wrong way: a transfer to a campus PC through the firewall
	//    with stock TCP settings.
	var slow *tcp.Stats
	campusSrv := tcp.NewServer(d.CampusPC, 5001, tcp.Legacy())
	tcp.Dial(d.RemoteDTN.Host, campusSrv, 50*units.MB, tcp.Legacy(),
		func(st *tcp.Stats) { slow = st })
	d.Net.RunFor(2 * time.Minute)
	fmt.Printf("campus path (firewalled, untuned): %v in %v = %v\n",
		slow.BytesAcked, slow.Duration().Round(time.Millisecond), slow.Throughput())

	// 4. The right way: GridFTP with parallel streams to the DTN.
	var fast *dtn.Result
	dtn.GridFTP{Streams: 4}.Start(d.RemoteDTN, d.DTN, 500*units.MB,
		func(r *dtn.Result) { fast = r })
	d.Net.RunFor(time.Minute)
	fmt.Printf("science DMZ path (GridFTP x4):     %v in %v = %v\n",
		fast.Size, fast.Duration().Round(time.Millisecond), fast.Throughput())

	fmt.Printf("\nspeedup: %.0fx\n", float64(fast.Throughput())/float64(slow.Throughput()))
}
