// Tier-2 dataset pulls: in-network content caching on the Science DMZ
// read path.
//
// An LHC-style Tier-1 DTN serves a catalog of named, chunked datasets
// across the WAN. A Tier-2 site's reader population repeatedly pulls
// hot datasets through its Science DMZ, with popularity following a
// Zipf law. The sweep runs each popularity skew twice — once bare, once
// with a byte-budgeted LRU content store on the DMZ switch (with
// PIT-style request aggregation) — and measures the WAN egress the
// cache keeps off the cut link.
//
// Run with: go run ./examples/tier2-pulls
//
// The headline acceptance claim is checked on exit: at classic Zipf
// (skew 1.0) a cache holding 10% of the catalog must remove at least
// half the WAN egress. Output is byte-identical at any -shards value.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/shard"
)

func main() {
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)

	res := experiments.Tier2(experiments.Tier2Config{})
	fmt.Print(res.Render())

	if !res.Pass() {
		fmt.Println("FAIL: a run did not finish its workload or did not audit clean")
		os.Exit(1)
	}
	red, ok := res.ReductionAt(1.0)
	if !ok {
		fmt.Println("FAIL: no cached run at Zipf 1.0")
		os.Exit(1)
	}
	if red < 0.5 {
		fmt.Printf("FAIL: WAN egress reduction at Zipf 1.0 is %.1f%%, want >=50%%\n", 100*red)
		os.Exit(1)
	}
	fmt.Printf("\nacceptance: WAN egress reduction at Zipf 1.0 with a 10%% cache: %.1f%% (>=50%%)\n", 100*red)
}
