// LHC Tier-1: the §4.3 big-data site plus the §7 future technologies.
//
// A transfer cluster moves data across the 40G WAN front-end while the
// enterprise side stays behind its firewalls; an OSCARS-style circuit is
// then reserved for an RDMA (RoCE) transfer, demonstrating the §7.1
// result: near-line-rate with a fraction of TCP's CPU cost — but only on
// the circuit.
//
// Run with: go run ./examples/lhc-tier1
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/flowgen"
	"repro/internal/netsim"
	"repro/internal/rdma"
	"repro/internal/shard"
	"repro/internal/topo"
	"repro/internal/units"
)

func main() {
	shards := flag.Int("shards", 0, "run the simulated network on N parallel shards (0 = the classic single-scheduler path; results are byte-identical at any N)")
	flag.Parse()
	shard.SetDefaultPlan(*shards)

	b := topo.NewBigData(1, topo.BigDataConfig{})

	// 1. LHC-style transfer mesh across the data plane.
	var srcs, dsts []*netsim.Host
	for i := range b.RemoteCluster {
		srcs = append(srcs, b.RemoteCluster[i].Host)
		dsts = append(dsts, b.Cluster[i].Host)
	}
	mesh := flowgen.StartLHCMesh(srcs, dsts, 2811, 1)
	b.Net.RunFor(8 * time.Second)
	fmt.Printf("transfer mesh: %d flows, aggregate %.1f Gbps across the %v WAN\n",
		len(mesh.Conns), float64(mesh.Aggregate())/1e9, b.WAN.Rate)
	inspected := b.Firewalls[0].Stats.Inspected + b.Firewalls[1].Stats.Inspected
	fmt.Printf("science packets inspected by the enterprise firewalls: %d\n\n", inspected)

	// 2. Reserve a circuit for an overnight RoCE replication.
	svc := circuit.NewService(b.Net, "site")
	c, err := svc.Reserve("roce-replication",
		b.RemoteCluster[0].Host.Name(), b.Cluster[0].Host.Name(), 9*units.Gbps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reserved circuit %s: %v along %v\n", c.ID, c.Rate, c.Path)

	var res *rdma.Result
	rdma.Transfer(b.RemoteCluster[0].Host, b.Cluster[0].Host, 4791, 2*units.GB,
		rdma.Options{Rate: 8500 * units.Mbps}, func(r *rdma.Result) { res = r })
	b.Net.RunFor(10 * time.Second)

	fmt.Printf("RoCE on circuit: %v in %v = %.1f Gbps\n",
		res.Size, res.Duration().Round(time.Millisecond), float64(res.Throughput())/1e9)
	fmt.Printf("CPU cost: RoCE %.2f core-s vs TCP %.2f core-s (%.0fx less)\n",
		res.CPUSeconds, res.TCPCPUSeconds, res.TCPCPUSeconds/res.CPUSeconds)
	c.Release()
	fmt.Println("circuit released")
}
