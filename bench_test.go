// Package repro's benchmark harness regenerates every figure and
// quantitative claim in the paper (see DESIGN.md §3 for the index) and
// reports the headline numbers as benchmark metrics. Each benchmark runs
// a full simulated experiment per iteration — expect seconds per
// iteration; Go's default -benchtime settles at N=1.
//
//	go test -bench=. -benchmem
//
// Ablation benchmarks at the bottom quantify the design choices the
// paper argues for: SACK recovery, parallel streams, switch buffer depth
// and jumbo frames.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dtn"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/units"
)

func BenchmarkFig1ThroughputVsRTT(b *testing.B) {
	var res *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig1(experiments.Fig1Config{
			RTTs:     []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond},
			Duration: 6 * time.Second,
		})
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(float64(last.LossFree)/1e9, "lossfree-80ms-Gbps")
	b.ReportMetric(float64(last.Reno)/1e9, "reno-80ms-Gbps")
	b.ReportMetric(float64(last.HTCP)/1e9, "htcp-80ms-Gbps")
	b.ReportMetric(float64(last.Mathis)/1e9, "mathis-80ms-Gbps")
}

func BenchmarkFig2Dashboard(b *testing.B) {
	var res *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig2()
	}
	b.ReportMetric(float64(len(res.Alerts)), "alerts")
}

func BenchmarkFig3SimpleDMZ(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig3()
	}
	b.ReportMetric(float64(res.CampusRate)/1e6, "campus-Mbps")
	b.ReportMetric(float64(res.DMZRate)/1e9, "dmz-Gbps")
	b.ReportMetric(res.Speedup(), "speedup-x")
}

func BenchmarkFig4Supercomputer(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4()
	}
	b.ReportMetric(float64(res.DTNRate)/1e9, "dtn-Gbps")
	b.ReportMetric(float64(res.LoginRate)/1e6, "login-Mbps")
}

func BenchmarkFig5BigData(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig5()
	}
	b.ReportMetric(res.AggregateGbps, "aggregate-Gbps")
}

func BenchmarkFig67ColoradoFanIn(b *testing.B) {
	var res *experiments.Fig67Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig67()
	}
	b.ReportMetric(float64(res.BrokenPerHost)/1e6, "faulty-Mbps")
	b.ReportMetric(float64(res.FixedPerHost)/1e6, "fixed-Mbps")
}

func BenchmarkFig8PennState(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8()
	}
	b.ReportMetric(float64(res.BrokenIn)/1e6, "seqcheck-Mbps")
	b.ReportMetric(res.InFactor(), "inbound-fix-x")
	b.ReportMetric(res.OutFactor(), "outbound-fix-x")
}

func BenchmarkLineCard(b *testing.B) {
	var res *experiments.LineCardResult
	for i := 0; i < b.N; i++ {
		res = experiments.LineCard()
	}
	b.ReportMetric(res.OwampLoss*100, "owamp-loss-pct")
	b.ReportMetric(float64(res.CleanTCP)/1e9, "clean-Gbps")
	b.ReportMetric(float64(res.FaultyTCP)/1e9, "faulty-Gbps")
}

func BenchmarkNOAA(b *testing.B) {
	var res *experiments.NOAAResult
	for i := 0; i < b.N; i++ {
		res = experiments.NOAA()
	}
	b.ReportMetric(float64(res.FTPRate)/8e6, "ftp-MBps")
	b.ReportMetric(float64(res.DTNRate)/8e6, "dtn-MBps")
	b.ReportMetric(res.Speedup(), "speedup-x")
	b.ReportMetric(res.DatasetTime.Minutes(), "dataset-minutes")
}

func BenchmarkNERSC(b *testing.B) {
	var res *experiments.NERSCResult
	for i := 0; i < b.N; i++ {
		res = experiments.NERSC()
	}
	b.ReportMetric(float64(res.DTNRate)/8e6, "dtn-MBps")
	b.ReportMetric(res.Legacy33GB.Hours(), "legacy-33GB-hours")
	b.ReportMetric(res.DTN40TB.Hours()/24, "dtn-40TB-days")
}

func BenchmarkRoCE(b *testing.B) {
	var res *experiments.RoCEResult
	for i := 0; i < b.N; i++ {
		res = experiments.RoCE()
	}
	b.ReportMetric(res.CircuitGbps, "circuit-Gbps")
	b.ReportMetric(res.NoCircuitGbps, "nocircuit-Gbps")
	b.ReportMetric(res.CPUFactor, "cpu-ratio-x")
}

func BenchmarkSDNBypass(b *testing.B) {
	var res *experiments.SDNResult
	for i := 0; i < b.N; i++ {
		res = experiments.SDNBypass()
	}
	b.ReportMetric(res.FirewalledGbps, "firewalled-Gbps")
	b.ReportMetric(res.BypassGbps, "bypass-Gbps")
}

func BenchmarkAudit(b *testing.B) {
	var res *experiments.AuditResult
	for i := 0; i < b.N; i++ {
		res = experiments.AuditDesigns()
	}
	b.ReportMetric(float64(res.Rows[0].Critical), "campus-criticals")
	b.ReportMetric(float64(res.Rows[1].Critical), "retrofit-criticals")
}

// --- ablations -----------------------------------------------------------

// lossyTransfer measures a 10s unbounded flow on a 10G/9000-MTU path
// with the given RTT, loss, and sender options.
func lossyTransfer(seed int64, rtt time.Duration, p float64, opts tcp.Options) units.BitRate {
	n := netsim.New(seed)
	c := n.NewHost("c")
	s := n.NewHost("s")
	r1 := n.NewDevice("r1", netsim.DeviceConfig{EgressBuffer: 64 * units.MB})
	r2 := n.NewDevice("r2", netsim.DeviceConfig{EgressBuffer: 64 * units.MB})
	lk := netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: 10 * time.Microsecond, MTU: 9000}
	n.Connect(c, r1, lk)
	wan := lk
	wan.Delay = rtt / 2
	wan.Loss = netsim.RandomLoss{P: p}
	n.Connect(r1, r2, wan)
	n.Connect(r2, s, lk)
	n.ComputeRoutes()
	srv := tcp.NewServer(s, 5001, opts)
	conn := tcp.Dial(c, srv, -1, opts, nil)
	n.RunFor(10 * time.Second)
	return conn.Stats().Throughput()
}

// BenchmarkAblationSACK quantifies SACK vs pure NewReno recovery on a
// lossy high-BDP path — the recovery mechanism every real DTN depends on.
func BenchmarkAblationSACK(b *testing.B) {
	var withSack, without units.BitRate
	for i := 0; i < b.N; i++ {
		withSack = lossyTransfer(7, 40*time.Millisecond, 1e-4, tcp.Tuned())
		off := tcp.Tuned()
		off.NoSACK = true
		without = lossyTransfer(7, 40*time.Millisecond, 1e-4, off)
	}
	b.ReportMetric(float64(withSack)/1e6, "sack-Mbps")
	b.ReportMetric(float64(without)/1e6, "newreno-Mbps")
}

// BenchmarkAblationParallelStreams quantifies GridFTP stream counts on a
// lossy WAN — why the DTN toolset uses parallel TCP.
func BenchmarkAblationParallelStreams(b *testing.B) {
	rates := map[int]units.BitRate{}
	for i := 0; i < b.N; i++ {
		for _, streams := range []int{1, 4, 8} {
			d := topo.NewSimpleDMZ(3, topo.SimpleDMZConfig{
				WAN: topo.WANConfig{Loss: netsim.RandomLoss{P: 3e-5}},
			})
			var res *dtn.Result
			dtn.GridFTP{Streams: streams}.Start(d.RemoteDTN, d.DTN, 500*units.MB, func(r *dtn.Result) { res = r })
			d.Net.RunFor(60 * time.Second)
			if res != nil {
				rates[streams] = res.Throughput()
			}
		}
	}
	b.ReportMetric(float64(rates[1])/1e9, "1stream-Gbps")
	b.ReportMetric(float64(rates[4])/1e9, "4stream-Gbps")
	b.ReportMetric(float64(rates[8])/1e9, "8stream-Gbps")
}

// BenchmarkAblationBufferDepth quantifies §5's buffer argument: the same
// fan-in workload across switch buffer sizes.
func BenchmarkAblationBufferDepth(b *testing.B) {
	rates := map[units.ByteSize]units.BitRate{}
	sizes := []units.ByteSize{512 * units.KB, 4 * units.MB, 32 * units.MB}
	for i := 0; i < b.N; i++ {
		for _, buf := range sizes {
			n := netsim.New(11)
			sw := n.NewDevice("sw", netsim.DeviceConfig{EgressBuffer: buf})
			dst := n.NewHost("dst")
			n.Connect(sw, dst, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: 20 * time.Millisecond, MTU: 9000, QueueA: buf})
			srv := tcp.NewServer(dst, 5001, tcp.Tuned())
			var conns []*tcp.Conn
			for j := 0; j < 4; j++ {
				h := n.NewHost("src" + string(rune('a'+j)))
				n.Connect(h, sw, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: 10 * time.Microsecond, MTU: 9000})
				n.ComputeRoutes()
				conns = append(conns, tcp.Dial(h, srv, -1, tcp.Tuned(), nil))
			}
			n.RunFor(8 * time.Second)
			var sum units.BitRate
			for _, conn := range conns {
				sum += conn.Stats().Throughput()
			}
			rates[buf] = sum
		}
	}
	b.ReportMetric(float64(rates[sizes[0]])/1e9, "512KB-Gbps")
	b.ReportMetric(float64(rates[sizes[1]])/1e9, "4MB-Gbps")
	b.ReportMetric(float64(rates[sizes[2]])/1e9, "32MB-Gbps")
}

// BenchmarkAblationMTU quantifies jumbo frames (9000) vs standard (1500)
// on a lossy WAN — the Mathis bound scales linearly with MSS.
func BenchmarkAblationMTU(b *testing.B) {
	rates := map[int]units.BitRate{}
	for i := 0; i < b.N; i++ {
		for _, mtu := range []int{1500, 9000} {
			d := topo.NewSimpleDMZ(5, topo.SimpleDMZConfig{
				WAN: topo.WANConfig{MTU: mtu, Loss: netsim.RandomLoss{P: 5e-5}},
			})
			var res *dtn.Result
			dtn.GridFTP{Streams: 1}.Start(d.RemoteDTN, d.DTN, 200*units.MB, func(r *dtn.Result) { res = r })
			d.Net.RunFor(60 * time.Second)
			if res != nil {
				rates[mtu] = res.Throughput()
			}
		}
	}
	b.ReportMetric(float64(rates[1500])/1e6, "mtu1500-Mbps")
	b.ReportMetric(float64(rates[9000])/1e6, "mtu9000-Mbps")
}

// BenchmarkSimulatorEventRate measures raw kernel throughput: simulated
// packet events per wall second for a saturated 10G flow.
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := netsim.New(1)
		c := n.NewHost("c")
		s := n.NewHost("s")
		n.Connect(c, s, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: time.Millisecond, MTU: 9000})
		n.ComputeRoutes()
		srv := tcp.NewServer(s, 5001, tcp.Tuned())
		tcp.Dial(c, srv, -1, tcp.Tuned(), nil)
		n.RunFor(2 * time.Second)
		b.ReportMetric(float64(n.Sched.Processed), "events/iter")
	}
}

// BenchmarkSweepParallel measures the sweep harness worker pool on an
// 8-point loss sweep: the same workload at 1 worker and at 8. The output
// is byte-identical either way (the determinism tests enforce it); the
// wall-clock ratio is the parallel speedup, bounded by available cores —
// see EXPERIMENTS.md for recorded numbers.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := experiments.SweepConfig{
		Axis: "loss", Min: 1e-4, Max: 1e-2, Points: 8,
		RTT: 5 * time.Millisecond, Duration: time.Second,
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg.Parallel = workers
				res, err := experiments.RunSweep(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != cfg.Points {
					b.Fatalf("rows = %d", len(res.Rows))
				}
			}
		})
	}
}

// --- telemetry overhead --------------------------------------------------

// telemetryWorkload is the BenchmarkSimulatorEventRate scenario with an
// optional telemetry instance attached, shared by the overhead pair.
func telemetryWorkload(b *testing.B, tele *telemetry.Telemetry) {
	for i := 0; i < b.N; i++ {
		n := netsim.New(1)
		if tele != nil {
			n.AttachTelemetry(tele)
		}
		c := n.NewHost("c")
		s := n.NewHost("s")
		n.Connect(c, s, netsim.LinkConfig{Rate: 10 * units.Gbps, Delay: time.Millisecond, MTU: 9000})
		n.ComputeRoutes()
		srv := tcp.NewServer(s, 5001, tcp.Tuned())
		tcp.Dial(c, srv, -1, tcp.Tuned(), nil)
		n.RunFor(2 * time.Second)
		b.ReportMetric(float64(n.Sched.Processed), "events/iter")
	}
}

// BenchmarkTelemetryDisabled runs the event-rate workload with no
// telemetry attached: the instrumentation must compile down to nil-bus
// checks, so this should stay within ~2% of the pre-telemetry
// BenchmarkSimulatorEventRate baseline (see EXPERIMENTS.md).
func BenchmarkTelemetryDisabled(b *testing.B) {
	telemetryWorkload(b, nil)
}

// BenchmarkTelemetryEnabled runs the same workload with full tracing: a
// flight-recorder bus subscriber receiving every packet event plus a
// 100 ms metrics sampler. The gap to BenchmarkTelemetryDisabled is the
// price of turning tracing on.
func BenchmarkTelemetryEnabled(b *testing.B) {
	tele := telemetry.New()
	tele.SampleInterval = 100 * time.Millisecond
	fr := telemetry.NewFlightRecorder(64 * 1024)
	tele.Bus.Subscribe(fr.Record)
	telemetryWorkload(b, tele)
	b.ReportMetric(float64(fr.Total())/float64(b.N), "trace-events/iter")
}
